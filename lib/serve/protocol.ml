(* EBPS frames: "EBPS" + version + type tag + LEB128 payload length +
   payload + CRC-32(LE) of everything before the CRC. See protocol.mli
   and docs/SERVICE.md for the layout contract. *)

module Fault = Ebp_util.Fault
module Crc32 = Ebp_util.Crc32

let protocol_version = 1
let magic = "EBPS"
let max_payload = 1 lsl 26

let fp_decode = Fault.point "serve.frame.decode"

type error_code =
  | Bad_request
  | Unknown_workload
  | Unknown_artifact
  | Unsupported_version
  | Shutting_down
  | Internal

let error_code_to_int = function
  | Bad_request -> 1
  | Unknown_workload -> 2
  | Unknown_artifact -> 3
  | Unsupported_version -> 4
  | Shutting_down -> 5
  | Internal -> 6

let error_code_of_int = function
  | 1 -> Some Bad_request
  | 2 -> Some Unknown_workload
  | 3 -> Some Unknown_artifact
  | 4 -> Some Unsupported_version
  | 5 -> Some Shutting_down
  | 6 -> Some Internal
  | _ -> None

let error_code_name = function
  | Bad_request -> "bad-request"
  | Unknown_workload -> "unknown-workload"
  | Unknown_artifact -> "unknown-artifact"
  | Unsupported_version -> "unsupported-version"
  | Shutting_down -> "shutting-down"
  | Internal -> "internal"

type request =
  | Hello of { tenant : string; max_version : int }
  | Ping
  | Sessions_query of {
      name : string;
      source : string;
      seed : int;
      engine : string;
      keep_hitless : bool;
    }
  | Experiment_query of { workloads : string list; artifact : string }
  | Query of {
      name : string;
      source : string;
      seed : int;
      expr : string;
      engine : string;
      format : string;
    }
  | Live_query of {
      name : string;
      source : string;
      seed : int;
      expr : string;
      format : string;
      min_events : int;
    }
  | Stats_query
  | Shutdown

type response =
  | Hello_ok of { version : int; server : string }
  | Pong
  | Report of string
  | Stats of string
  | Live_report of { report : string; high_water : int; complete : bool }
  | Error_resp of { code : error_code; message : string }
  | Overloaded of { queued : int; limit : int }
  | Shutdown_ack

type frame = Request of request | Response of response

let equal_frame (a : frame) (b : frame) = a = b

(* --- frame type tags --- *)

let tag_of_frame = function
  | Request (Hello _) -> 0x01
  | Request Ping -> 0x02
  | Request (Sessions_query _) -> 0x03
  | Request (Experiment_query _) -> 0x04
  | Request Stats_query -> 0x05
  | Request Shutdown -> 0x06
  | Request (Query _) -> 0x07
  | Request (Live_query _) -> 0x08
  | Response (Hello_ok _) -> 0x81
  | Response Pong -> 0x82
  | Response (Report _) -> 0x83
  | Response (Stats _) -> 0x84
  | Response (Error_resp _) -> 0x85
  | Response (Overloaded _) -> 0x86
  | Response Shutdown_ack -> 0x87
  | Response (Live_report _) -> 0x88

(* --- payload writing --- *)

let put_varint b n =
  if n < 0 then invalid_arg "Protocol.put_varint: negative";
  let n = ref n in
  let fin = ref false in
  while not !fin do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char b (Char.chr byte);
      fin := true
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let put_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

let put_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let put_list b put xs =
  put_varint b (List.length xs);
  List.iter (put b) xs

let encode_payload b = function
  | Request (Hello { tenant; max_version }) ->
      put_string b tenant;
      put_varint b max_version
  | Request Ping | Request Stats_query | Request Shutdown -> ()
  | Request (Sessions_query { name; source; seed; engine; keep_hitless }) ->
      put_string b name;
      put_string b source;
      put_varint b seed;
      put_string b engine;
      put_bool b keep_hitless
  | Request (Experiment_query { workloads; artifact }) ->
      put_list b put_string workloads;
      put_string b artifact
  | Request (Query { name; source; seed; expr; engine; format }) ->
      put_string b name;
      put_string b source;
      put_varint b seed;
      put_string b expr;
      put_string b engine;
      put_string b format
  | Request (Live_query { name; source; seed; expr; format; min_events }) ->
      put_string b name;
      put_string b source;
      put_varint b seed;
      put_string b expr;
      put_string b format;
      put_varint b min_events
  | Response (Hello_ok { version; server }) ->
      put_varint b version;
      put_string b server
  | Response Pong | Response Shutdown_ack -> ()
  | Response (Report text) -> put_string b text
  | Response (Stats ndjson) -> put_string b ndjson
  | Response (Error_resp { code; message }) ->
      put_varint b (error_code_to_int code);
      put_string b message
  | Response (Overloaded { queued; limit }) ->
      put_varint b queued;
      put_varint b limit
  | Response (Live_report { report; high_water; complete }) ->
      put_string b report;
      put_varint b high_water;
      put_bool b complete

let encode frame =
  let payload =
    let b = Buffer.create 64 in
    encode_payload b frame;
    Buffer.contents b
  in
  let b = Buffer.create (String.length payload + 16) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr protocol_version);
  Buffer.add_char b (Char.chr (tag_of_frame frame));
  put_varint b (String.length payload);
  Buffer.add_string b payload;
  let crc = Crc32.string (Buffer.contents b) in
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((crc lsr (8 * i)) land 0xff))
  done;
  Buffer.contents b

let encode_request r = encode (Request r)
let encode_response r = encode (Response r)

(* --- payload reading --- *)

exception Bad of string

type reader = { buf : string; limit : int; mutable rpos : int }

let need r n = if r.rpos + n > r.limit then raise (Bad "truncated payload")

let get_byte r =
  need r 1;
  let c = Char.code r.buf.[r.rpos] in
  r.rpos <- r.rpos + 1;
  c

let get_varint r =
  let rec go shift acc =
    if shift > 62 then raise (Bad "varint overflow");
    let b = get_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_string r =
  let n = get_varint r in
  if n > max_payload then raise (Bad "oversized string");
  need r n;
  let s = String.sub r.buf r.rpos n in
  r.rpos <- r.rpos + n;
  s

let get_bool r =
  match get_byte r with
  | 0 -> false
  | 1 -> true
  | _ -> raise (Bad "bad boolean")

let get_list r get =
  let n = get_varint r in
  if n > 4096 then raise (Bad "oversized list");
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (get r :: acc) in
  go n []

let decode_payload tag r =
  match tag with
  | 0x01 ->
      let tenant = get_string r in
      let max_version = get_varint r in
      Request (Hello { tenant; max_version })
  | 0x02 -> Request Ping
  | 0x03 ->
      let name = get_string r in
      let source = get_string r in
      let seed = get_varint r in
      let engine = get_string r in
      let keep_hitless = get_bool r in
      Request (Sessions_query { name; source; seed; engine; keep_hitless })
  | 0x04 ->
      let workloads = get_list r get_string in
      let artifact = get_string r in
      Request (Experiment_query { workloads; artifact })
  | 0x05 -> Request Stats_query
  | 0x06 -> Request Shutdown
  | 0x07 ->
      let name = get_string r in
      let source = get_string r in
      let seed = get_varint r in
      let expr = get_string r in
      let engine = get_string r in
      let format = get_string r in
      Request (Query { name; source; seed; expr; engine; format })
  | 0x08 ->
      let name = get_string r in
      let source = get_string r in
      let seed = get_varint r in
      let expr = get_string r in
      let format = get_string r in
      let min_events = get_varint r in
      Request (Live_query { name; source; seed; expr; format; min_events })
  | 0x81 ->
      let version = get_varint r in
      let server = get_string r in
      Response (Hello_ok { version; server })
  | 0x82 -> Response Pong
  | 0x83 -> Response (Report (get_string r))
  | 0x84 -> Response (Stats (get_string r))
  | 0x85 ->
      let code =
        match error_code_of_int (get_varint r) with
        | Some c -> c
        | None -> raise (Bad "unknown error code")
      in
      Response (Error_resp { code; message = get_string r })
  | 0x86 ->
      let queued = get_varint r in
      let limit = get_varint r in
      Response (Overloaded { queued; limit })
  | 0x87 -> Response Shutdown_ack
  | 0x88 ->
      let report = get_string r in
      let high_water = get_varint r in
      let complete = get_bool r in
      Response (Live_report { report; high_water; complete })
  | t -> raise (Bad (Printf.sprintf "unknown frame type 0x%02x" t))

(* Parse the envelope's LEB128 length field incrementally: the buffer may
   end in the middle of it. *)
let rec scan_varint buf ~pos ~stop ~shift ~acc =
  if pos >= stop then `Need_more
  else if shift > 62 then `Corrupt "varint overflow in frame length"
  else
    let b = Char.code buf.[pos] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then `Value (acc, pos + 1)
    else scan_varint buf ~pos:(pos + 1) ~stop ~shift:(shift + 7) ~acc

let decode ~buf ~pos ~len =
  match Fault.fires fp_decode with
  | Some _ -> `Corrupt "injected fault at serve.frame.decode"
  | None -> (
      if len = 0 then `Need_more
      else
        let mlen = min len 4 in
        if String.sub buf pos mlen <> String.sub magic 0 mlen then
          `Corrupt "bad frame magic"
        else if len < 6 then `Need_more
        else
          let version = Char.code buf.[pos + 4] in
          if version <> protocol_version then
            `Corrupt (Printf.sprintf "unsupported frame version %d" version)
          else
            let tag = Char.code buf.[pos + 5] in
            match
              scan_varint buf ~pos:(pos + 6) ~stop:(pos + len) ~shift:0 ~acc:0
            with
            | `Need_more -> `Need_more
            | `Corrupt _ as c -> c
            | `Value (plen, body) ->
                if plen > max_payload then
                  `Corrupt (Printf.sprintf "oversized frame (%d bytes)" plen)
                else if pos + len < body + plen + 4 then `Need_more
                else begin
                  let crc_pos = body + plen in
                  let stored =
                    Char.code buf.[crc_pos]
                    lor (Char.code buf.[crc_pos + 1] lsl 8)
                    lor (Char.code buf.[crc_pos + 2] lsl 16)
                    lor (Char.code buf.[crc_pos + 3] lsl 24)
                  in
                  let computed = Crc32.sub buf ~pos ~len:(crc_pos - pos) in
                  if stored <> computed then `Corrupt "frame crc mismatch"
                  else
                    let r = { buf; limit = crc_pos; rpos = body } in
                    match decode_payload tag r with
                    | exception Bad msg -> `Corrupt msg
                    | frame ->
                        if r.rpos <> crc_pos then
                          `Corrupt "trailing payload bytes"
                        else `Frame (frame, crc_pos + 4 - pos)
                end)

let pp_frame ppf frame =
  let p fmt = Format.fprintf ppf fmt in
  match frame with
  | Request (Hello { tenant; max_version }) ->
      p "Hello{tenant=%S;max_version=%d}" tenant max_version
  | Request Ping -> p "Ping"
  | Request (Sessions_query { name; source; seed; engine; keep_hitless }) ->
      p "Sessions_query{name=%S;source=<%d bytes>;seed=%d;engine=%s;hitless=%b}"
        name (String.length source) seed engine keep_hitless
  | Request (Experiment_query { workloads; artifact }) ->
      p "Experiment_query{workloads=[%s];artifact=%s}"
        (String.concat "," workloads)
        artifact
  | Request (Query { name; source; seed; expr; engine; format }) ->
      p "Query{name=%S;source=<%d bytes>;seed=%d;expr=%S;engine=%s;format=%s}"
        name (String.length source) seed expr engine format
  | Request (Live_query { name; source; seed; expr; format; min_events }) ->
      p "Live_query{name=%S;source=<%d bytes>;seed=%d;expr=%S;format=%s;min_events=%d}"
        name (String.length source) seed expr format min_events
  | Request Stats_query -> p "Stats_query"
  | Request Shutdown -> p "Shutdown"
  | Response (Hello_ok { version; server }) ->
      p "Hello_ok{version=%d;server=%S}" version server
  | Response Pong -> p "Pong"
  | Response (Report s) -> p "Report<%d bytes>" (String.length s)
  | Response (Stats s) -> p "Stats<%d bytes>" (String.length s)
  | Response (Error_resp { code; message }) ->
      p "Error{%s;%S}" (error_code_name code) message
  | Response (Overloaded { queued; limit }) ->
      p "Overloaded{queued=%d;limit=%d}" queued limit
  | Response Shutdown_ack -> p "Shutdown_ack"
  | Response (Live_report { report; high_water; complete }) ->
      p "Live_report{<%d bytes>;high_water=%d;complete=%b}"
        (String.length report) high_water complete
