(** The ABI shared between the code generator and the runtime: system-call
    numbers and the calling convention (arguments in [a0]–[a5], result in
    [v0]). The loader's syscall dispatcher must agree with the code the
    compiler emits. *)

val sys_exit : int
val sys_print_int : int
val sys_print_char : int
val sys_malloc : int
val sys_free : int
val sys_realloc : int
val sys_rand : int
val sys_srand : int

val syscall_of_builtin : Typed.builtin -> int

val max_args : int
(** Register-passed argument limit (6). *)
