(* The compiled engine: predicates lower onto Write_index posting-list
   operations, producing the sorted position set of matching writes
   without scanning the trace. Boolean connectives become Pos_set
   union/intersection/difference; [live] joins the per-object install
   timelines against the word postings; aggregations walk only the
   matched positions (fetching attributes through Trace.get_raw).

   The one subtlety is granularity: word postings are word-granular, so
   for a byte range whose endpoints fall mid-word, candidates found under
   the two BOUNDARY words are re-checked against the exact byte range
   (interior words are fully covered, so their candidates pass as-is).
   Wide (3+ word) writes are absent from the word posting and handled
   individually, as everywhere else in the codebase. *)

module Trace = Ebp_trace.Trace
module W = Ebp_trace.Write_index
module P = W.Pos_set
module Session = Ebp_sessions.Session

let p_compile = Ebp_util.Fault.point "query.compile"

(* First index in [arr] holding a value >= x. *)
let lower_bound arr x =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get arr mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

let run trace index (q : Ast.query) : Qresult.raw =
  Ebp_util.Fault.check p_compile;
  let events = W.events index in
  let universe = lazy (W.all_write_positions index) in
  let write_attrs i =
    Trace.get_raw trace i (fun ~tag:_ ~obj:_ ~lo ~hi ~pc -> (lo, hi, pc))
  in
  let filter_overlap a b ps =
    let out = Array.make (Array.length ps) 0 in
    let w = ref 0 in
    Array.iter
      (fun i ->
        let lo, hi, _ = write_attrs i in
        if lo <= b && hi >= a then begin
          out.(!w) <- i;
          incr w
        end)
      ps;
    Array.sub out 0 !w
  in
  (* Positions of writes inside the open window (after, before) whose
     byte range intersects [a, b]. *)
  let writes_in_range ~after ~before a b =
    let ww = W.word_writes index in
    let fw = a lsr 2 and lw = b lsr 2 in
    let ki = W.key_lower_bound ww fw and kj = W.key_upper_bound ww lw in
    let sets = ref [] in
    for k = ki to kj - 1 do
      let key = W.key_at ww k in
      let ps = W.positions_at ww k ~after ~before in
      let ps = if key > fw && key < lw then ps else filter_overlap a b ps in
      sets := ps :: !sets
    done;
    let wide = ref [] in
    W.iter_wide_word_writes index (fun ~ev ~first ~last ->
        if first <= lw && last >= fw && ev > after && ev < before then begin
          let lo, hi, _ = write_attrs ev in
          if lo <= b && hi >= a then wide := ev :: !wide
        end);
    P.union (Array.of_list (List.rev !wide) :: !sets)
  in
  let pcs = W.pc_writes index in
  let pc_keys ki kj =
    let sets = ref [] in
    for k = ki to kj - 1 do
      sets := W.positions_at pcs k ~after:(-1) ~before:events :: !sets
    done;
    P.union !sets
  in
  (* Live windows with the scan table's semantics: a window opens at
     install, closes at remove OR at a re-install (which replaces the
     range), and runs to the end of the trace if never closed. *)
  let iter_live_windows o f =
    let pending = ref None in
    let close b =
      match !pending with
      | Some (a, rlo, rhi) ->
          if b - a > 1 then f ~after:a ~before:b ~rlo ~rhi;
          pending := None
      | None -> ()
    in
    W.iter_object_timeline index o (fun ~ev ~is_install ~lo ~hi ->
        close ev;
        if is_install then pending := Some (ev, lo, hi));
    close events
  in
  let nobjs = Trace.object_count trace in
  let rec eval (p : Ast.pred) : int array =
    match p with
    | Ast.All -> Lazy.force universe
    | Ast.Pc_cmp (c, n) -> (
        match c with
        | Ast.Eq -> W.positions pcs n ~after:(-1) ~before:events
        | Ast.Ne ->
            P.diff (Lazy.force universe)
              (W.positions pcs n ~after:(-1) ~before:events)
        | Ast.Lt -> pc_keys 0 (W.key_lower_bound pcs n)
        | Ast.Le -> pc_keys 0 (W.key_upper_bound pcs n)
        | Ast.Gt -> pc_keys (W.key_upper_bound pcs n) (W.key_count pcs)
        | Ast.Ge -> pc_keys (W.key_lower_bound pcs n) (W.key_count pcs))
    | Ast.Pc_in (a, b) -> pc_keys (W.key_lower_bound pcs a) (W.key_upper_bound pcs b)
    | Ast.Addr_in (a, b) -> writes_in_range ~after:(-1) ~before:events a b
    | Ast.Time_in (a, b) ->
        let b = min b (events - 1) in
        if a > b then P.empty else P.within (Lazy.force universe) ~lo:(max a 0) ~hi:b
    | Ast.Live s ->
        let sets = ref [] in
        for o = 0 to nobjs - 1 do
          if Session.matches s (Trace.object_of_id trace o) then
            iter_live_windows o (fun ~after ~before ~rlo ~rhi ->
                sets := writes_in_range ~after ~before rlo rhi :: !sets)
        done;
        P.union !sets
    | Ast.And (a, b) -> P.inter (eval a) (eval b)
    | Ast.Or (a, b) -> P.union [ eval a; eval b ]
    | Ast.Not a -> P.diff (Lazy.force universe) (eval a)
  in
  let sorted_pairs tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  match (q.Ast.agg, q.Ast.group, q.Ast.bucket) with
  (* Count-all never needs positions at all. *)
  | Ast.Count, None, None when q.Ast.pred = Ast.All ->
      Qresult.Count (W.total_writes index)
  | agg, group, bucket -> (
      let positions = eval q.Ast.pred in
      match (agg, group, bucket) with
      | Ast.Count, None, None -> Qresult.Count (Array.length positions)
      | Ast.Count_distinct field, _, _ ->
          let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
          Array.iter
            (fun i ->
              let lo, hi, pc = write_attrs i in
              match field with
              | Ast.D_pc -> Hashtbl.replace seen pc ()
              | Ast.D_word ->
                  for w = lo lsr 2 to hi lsr 2 do
                    Hashtbl.replace seen w ()
                  done)
            positions;
          Qresult.Count (Hashtbl.length seen)
      | Ast.Count, Some Ast.G_pc, _ ->
          let tbl : (int, int) Hashtbl.t = Hashtbl.create 64 in
          Array.iter
            (fun i ->
              let _, _, pc = write_attrs i in
              Hashtbl.replace tbl pc
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl pc)))
            positions;
          Qresult.Groups (sorted_pairs tbl)
      | Ast.Count, Some Ast.G_object, _ ->
          (* Join the matched set against every object's live windows:
             binary-search the window's slice of [positions], then check
             each candidate against the installed byte range. *)
          let rows = ref [] in
          for o = nobjs - 1 downto 0 do
            let total = ref 0 in
            iter_live_windows o (fun ~after ~before ~rlo ~rhi ->
                let j = ref (lower_bound positions (after + 1)) in
                while
                  !j < Array.length positions && positions.(!j) < before
                do
                  let lo, hi, _ = write_attrs positions.(!j) in
                  if lo <= rhi && hi >= rlo then incr total;
                  incr j
                done);
            if !total > 0 then rows := (o, !total) :: !rows
          done;
          Qresult.Groups !rows
      | Ast.Count, None, Some width ->
          let rows = ref [] in
          let n = Array.length positions in
          let i = ref 0 in
          while !i < n do
            let start = positions.(!i) / width * width in
            let c = ref 0 in
            while !i < n && positions.(!i) < start + width do
              incr c;
              incr i
            done;
            rows := (start, !c) :: !rows
          done;
          Qresult.Buckets (List.rev !rows))
