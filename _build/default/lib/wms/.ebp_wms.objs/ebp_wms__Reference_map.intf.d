lib/wms/reference_map.mli: Ebp_util
