(** Compilation driver: MiniC source to executable program + debug info. *)

type output = {
  program : Ebp_isa.Program.t;  (** resolved, ready for {!Ebp_machine.Machine.create} *)
  debug : Debug_info.t;
}

val compile : string -> (output, string) result
(** Lex, parse, analyze, and generate code for a translation unit. *)
