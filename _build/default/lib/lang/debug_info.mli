(** Compiler-emitted symbol information ("-g" output).

    This is what the write-monitor service needs to map source-level objects
    to address ranges: for each function, its automatic variables as frame
    offsets and its static locals as absolute addresses; for the program,
    each global's address and size. The trace recorder uses it to install
    and remove monitors at function boundaries (paper §6), and the session
    layer uses it to enumerate candidate monitor sessions. *)

type location =
  | Frame of int  (** byte offset from the frame pointer (negative) *)
  | Static of int  (** absolute data-segment address *)

type variable = {
  var_name : string;
  size : int;  (** bytes *)
  location : location;
  is_param : bool;
  is_array : bool;
  is_static : bool;
}

type func = {
  id : int;  (** matches the [Enter]/[Leave] marker argument *)
  name : string;
  vars : variable list;  (** declaration order; params first *)
}

type global = { g_name : string; g_addr : int; g_size : int; g_is_array : bool }

type t = {
  functions : func array;  (** indexed by function id *)
  globals : global list;
  data_end : int;  (** first free data-segment address *)
  init_words : (int * int) list;
      (** (address, value) pairs the loader writes before execution:
          global and static-local initializers *)
}

val find_func : t -> int -> func
(** @raise Invalid_argument on an unknown id. *)

val func_by_name : t -> string -> func option
val global_by_name : t -> string -> global option

val pp : Format.formatter -> t -> unit
