lib/runtime/loader.mli: Allocator Ebp_lang Ebp_machine
