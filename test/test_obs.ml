(* Tests for the observability subsystem: per-domain counter and
   histogram shards must merge into exact totals whatever the domain
   count, spans must nest and stay balanced across exceptions, the
   disabled path must be a strict no-op, and an NDJSON snapshot must
   round-trip structurally. *)

module Metrics = Ebp_obs.Metrics
module Span = Ebp_obs.Span
module Export = Ebp_obs.Export
module Json = Ebp_obs.Json

(* The registry is process-global; every test starts from a clean,
   disabled slate. Metric names are namespaced per test anyway, since
   registration is permanent. *)
let fresh () =
  Metrics.set_enabled false;
  Metrics.reset ();
  Span.reset ()

let find_counter s name =
  match
    List.find_opt (fun (n, _, _) -> n = name) s.Metrics.counters
  with
  | Some (_, total, per_domain) -> (total, per_domain)
  | None -> Alcotest.fail ("counter not in snapshot: " ^ name)

let find_hist s name =
  match List.assoc_opt name s.Metrics.hists with
  | Some h -> h
  | None -> Alcotest.fail ("histogram not in snapshot: " ^ name)

(* --- counter merge across domains --- *)

let test_counter_merge () =
  List.iter
    (fun domains ->
      fresh ();
      Metrics.set_enabled true;
      let c = Metrics.counter "t.merge.c" in
      let per_domain = 10_000 in
      let work () =
        for _ = 1 to per_domain do
          Metrics.incr c
        done
      in
      let others =
        List.init (domains - 1) (fun _ -> Domain.spawn work)
      in
      work ();
      List.iter Domain.join others;
      Metrics.set_enabled false;
      let total, breakdown = find_counter (Metrics.snapshot ()) "t.merge.c" in
      Alcotest.(check int)
        (Printf.sprintf "total on %d domains" domains)
        (domains * per_domain) total;
      Alcotest.(check int)
        (Printf.sprintf "breakdown sums to total on %d domains" domains)
        total
        (List.fold_left (fun acc (_, v) -> acc + v) 0 breakdown);
      Alcotest.(check int)
        (Printf.sprintf "%d contributing domains" domains)
        domains (List.length breakdown))
    [ 1; 2; 4 ]

(* --- histogram merge correctness (property) --- *)

(* Reference bucket histogram built sequentially, compared against the
   sharded one built by two racing domains. *)
let prop_histogram_merge =
  QCheck2.Test.make ~name:"histogram merge across 2 domains is exact"
    ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 200) (int_range (-5) 2_000_000))
        (list_size (int_range 0 200) (int_range (-5) 2_000_000)))
    (fun (xs, ys) ->
      fresh ();
      Metrics.set_enabled true;
      let h = Metrics.histogram "t.merge.h" in
      let other = Domain.spawn (fun () -> List.iter (Metrics.observe h) ys) in
      List.iter (Metrics.observe h) xs;
      Domain.join other;
      Metrics.set_enabled false;
      let got = find_hist (Metrics.snapshot ()) "t.merge.h" in
      let all = xs @ ys in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun v ->
          let b = Metrics.bucket_of_value v in
          Hashtbl.replace reference b
            (1 + Option.value ~default:0 (Hashtbl.find_opt reference b)))
        all;
      let ref_buckets =
        Hashtbl.fold (fun k n acc -> (k, n) :: acc) reference []
        |> List.sort compare
      in
      got.Metrics.count = List.length all
      && got.Metrics.sum = List.fold_left ( + ) 0 all
      && List.sort compare got.Metrics.buckets = ref_buckets
      && (all = []
         || got.Metrics.min_v = List.fold_left min max_int all
            && got.Metrics.max_v = List.fold_left max min_int all))

let test_bucket_bounds () =
  (* bucket 0 holds v <= 0; bucket k holds [2^(k-1), 2^k). *)
  Alcotest.(check int) "zero" 0 (Metrics.bucket_of_value 0);
  Alcotest.(check int) "negative" 0 (Metrics.bucket_of_value (-7));
  Alcotest.(check int) "one" 1 (Metrics.bucket_of_value 1);
  List.iter
    (fun k ->
      let lo = 1 lsl (k - 1) in
      Alcotest.(check int) (Printf.sprintf "lower edge of %d" k) k
        (Metrics.bucket_of_value lo);
      Alcotest.(check int)
        (Printf.sprintf "upper edge of %d" k)
        k
        (Metrics.bucket_of_value ((lo * 2) - 1));
      Alcotest.(check int)
        (Printf.sprintf "bucket_upper %d" k)
        ((1 lsl k) - 1) (Metrics.bucket_upper k))
    [ 2; 5; 17; 40 ]

(* --- registration --- *)

let test_registration () =
  fresh ();
  let c1 = Metrics.counter "t.reg.same" in
  let c2 = Metrics.counter "t.reg.same" in
  Metrics.set_enabled true;
  Metrics.incr c1;
  Metrics.incr c2;
  Metrics.set_enabled false;
  let total, _ = find_counter (Metrics.snapshot ()) "t.reg.same" in
  Alcotest.(check int) "same name, same cell" 2 total;
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"t.reg.same\" is a counter, not a histogram")
    (fun () -> ignore (Metrics.histogram "t.reg.same"))

(* --- spans --- *)

let test_span_nesting () =
  fresh ();
  Metrics.set_enabled true;
  let r =
    Span.with_span "t.outer" (fun () ->
        1 + Span.with_span "t.inner" (fun () -> 41))
  in
  Metrics.set_enabled false;
  Alcotest.(check int) "value through nested spans" 42 r;
  let events = Span.events () in
  Alcotest.(check int) "two events" 2 (List.length events);
  let ev name =
    match List.find_opt (fun (n, _, _, _) -> n = name) events with
    | Some (_, tid, ts, dur) -> (tid, ts, dur)
    | None -> Alcotest.fail ("no event " ^ name)
  in
  let otid, ots, odur = ev "t.outer" in
  let itid, its, idur = ev "t.inner" in
  Alcotest.(check int) "same domain" otid itid;
  Alcotest.(check bool) "inner nested in outer" true
    (ots <= its && its + idur <= ots + odur);
  (* Span durations also feed the histogram registry. *)
  let h = find_hist (Metrics.snapshot ()) "span.t.outer" in
  Alcotest.(check int) "span histogram count" 1 h.Metrics.count

let test_span_balance_on_exception () =
  fresh ();
  Metrics.set_enabled true;
  (match Span.with_span "t.boom" (fun () -> raise Exit) with
  | () -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  Metrics.set_enabled false;
  Alcotest.(check int) "event recorded despite raise" 1
    (List.length (Span.events ()));
  (* The export is the Chrome "JSON array" trace format: metadata events
     (process/thread names) plus the one complete event. *)
  let json = Span.to_trace_events () in
  match Json.of_string json with
  | Error msg -> Alcotest.fail ("trace events unparseable: " ^ msg)
  | Ok (Json.List evs) ->
      let phases =
        List.filter_map
          (fun ev -> Option.bind (Json.member "ph" ev) Json.to_str)
          evs
      in
      Alcotest.(check int) "one complete event" 1
        (List.length (List.filter (String.equal "X") phases));
      Alcotest.(check bool) "metadata events present" true
        (List.mem "M" phases)
  | Ok _ -> Alcotest.fail "trace-event JSON is not an array"

(* --- disabled path is a no-op --- *)

let test_disabled_noop () =
  fresh ();
  let c = Metrics.counter "t.disabled.c" in
  let h = Metrics.histogram "t.disabled.h" in
  let g = Metrics.gauge "t.disabled.g" in
  Metrics.incr c;
  Metrics.add c 17;
  Metrics.observe h 123;
  Metrics.set g 4.5;
  let r = Span.with_span "t.disabled.span" (fun () -> "through") in
  Alcotest.(check string) "with_span passes value through" "through" r;
  Alcotest.(check (list string)) "no span events" []
    (List.map (fun (n, _, _, _) -> n) (Span.events ()));
  let s = Metrics.snapshot () in
  let total, breakdown = find_counter s "t.disabled.c" in
  Alcotest.(check int) "counter untouched" 0 total;
  Alcotest.(check int) "no contributing domains" 0 (List.length breakdown);
  Alcotest.(check int) "histogram untouched" 0
    (find_hist s "t.disabled.h").Metrics.count;
  Alcotest.(check bool) "gauge untouched" true
    (List.assoc_opt "t.disabled.g" s.Metrics.gauges = None)

(* --- NDJSON round-trip --- *)

let test_ndjson_roundtrip () =
  fresh ();
  Metrics.set_enabled true;
  let c = Metrics.counter "t.rt.c" in
  let h = Metrics.histogram "t.rt.h" in
  let g = Metrics.gauge "t.rt.g" in
  let other =
    Domain.spawn (fun () ->
        for i = 1 to 500 do
          Metrics.add c 3;
          Metrics.observe h (i * 1000)
        done)
  in
  for i = 1 to 300 do
    Metrics.incr c;
    Metrics.observe h i
  done;
  Domain.join other;
  Metrics.set g 0.125;
  Metrics.set_enabled false;
  let s = Metrics.snapshot () in
  (match Export.of_ndjson (Export.to_ndjson s) with
  | Error msg -> Alcotest.fail ("round-trip parse: " ^ msg)
  | Ok s' ->
      Alcotest.(check bool) "snapshot survives NDJSON round-trip" true
        (s = s'));
  (* Corrupt input is a line-numbered error, not an exception. *)
  match Export.of_ndjson "{\"type\":\"meta\"}\nnot json\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
      Alcotest.(check bool) "error names the line" true
        (String.length msg > 0 && msg.[0] = 'l')

(* --- reset --- *)

let test_reset () =
  fresh ();
  Metrics.set_enabled true;
  let c = Metrics.counter "t.reset.c" in
  Metrics.add c 9;
  Metrics.reset ();
  Metrics.set_enabled false;
  let total, _ = find_counter (Metrics.snapshot ()) "t.reset.c" in
  Alcotest.(check int) "counter zeroed, registration kept" 0 total

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter merge across 1/2/4 domains" `Quick
            test_counter_merge;
          QCheck_alcotest.to_alcotest prop_histogram_merge;
          Alcotest.test_case "bucket bounds" `Quick test_bucket_bounds;
          Alcotest.test_case "idempotent registration, kind clash" `Quick
            test_registration;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "balance across exceptions" `Quick
            test_span_balance_on_exception;
        ] );
      ( "disabled",
        [ Alcotest.test_case "everything is a no-op" `Quick test_disabled_noop ] );
      ( "export",
        [ Alcotest.test_case "NDJSON round-trip" `Quick test_ndjson_roundtrip ] );
    ]
