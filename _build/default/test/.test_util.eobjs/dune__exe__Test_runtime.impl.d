test/test_runtime.ml: Alcotest Ebp_lang Ebp_machine Ebp_runtime List Option QCheck2 QCheck_alcotest Result
