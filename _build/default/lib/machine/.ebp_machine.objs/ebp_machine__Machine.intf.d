lib/machine/machine.mli: Cost_model Ebp_isa Ebp_util Memory
