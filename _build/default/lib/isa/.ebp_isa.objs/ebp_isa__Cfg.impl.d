lib/isa/cfg.ml: Hashtbl Instr Int List Program Reg
