(* Tests for Ebp_model: the analytical models of Figures 3-6, checked
   against hand-computed values with the paper's Table 2 timing. *)

module Timing = Ebp_wms.Timing
module Counts = Ebp_sessions.Counts
module Model = Ebp_model.Strategy_model
module Breakdown = Ebp_model.Breakdown

let t2 = Timing.sparcstation2

let counts ?(installs = 0) ?(removes = 0) ?(hits = 0) ?(misses = 0)
    ?(vm4 = (0, 0, 0)) ?(vm8 = (0, 0, 0)) () =
  let mk page_size (protects, unprotects, apm) =
    { Counts.page_size; protects; unprotects; active_page_misses = apm }
  in
  { Counts.installs; removes; hits; misses; vm = [ mk 4096 vm4; mk 8192 vm8 ] }

let check_us = Alcotest.(check (float 1e-6))

(* --- NativeHardware (Figure 3) --- *)

let test_nh_model () =
  let c = counts ~installs:10 ~removes:10 ~hits:100 ~misses:100000 () in
  let o = Model.overhead t2 Model.NH c in
  check_us "hit = hits * 131us" (100.0 *. 131.0) o.Model.hit_us;
  check_us "misses free" 0.0 o.Model.miss_us;
  check_us "installs free" 0.0 o.Model.install_us;
  check_us "removes free" 0.0 o.Model.remove_us;
  check_us "total" 13100.0 o.Model.total_us;
  match o.Model.breakdown with
  | [ ("NHFaultHandler", us) ] -> check_us "breakdown is all fault handler" 13100.0 us
  | _ -> Alcotest.fail "unexpected breakdown"

let test_nh_zero_hits_zero_cost () =
  let c = counts ~installs:5 ~removes:5 ~misses:1_000_000 () in
  let o = Model.overhead t2 Model.NH c in
  check_us "free when no hits" 0.0 o.Model.total_us

(* --- VirtualMemory (Figure 4) --- *)

let test_vm_model () =
  (* Hand-computed from Figure 4:
       hits=10, apm=20 -> (10+20) * (561 + 2.75)
       installs=3, protects=2 -> 3*(299+22+80) + 2*80
       removes=3, unprotects=2 -> 3*(299+22+80) + 2*299 *)
  let c = counts ~installs:3 ~removes:3 ~hits:10 ~misses:500 ~vm4:(2, 2, 20) () in
  let o = Model.overhead t2 (Model.VM 4096) c in
  check_us "hit" (10.0 *. 563.75) o.Model.hit_us;
  check_us "miss" (20.0 *. 563.75) o.Model.miss_us;
  check_us "install" ((3.0 *. 401.0) +. (2.0 *. 80.0)) o.Model.install_us;
  check_us "remove" ((3.0 *. 401.0) +. (2.0 *. 299.0)) o.Model.remove_us;
  check_us "total"
    ((30.0 *. 563.75) +. (3.0 *. 401.0) +. 160.0 +. (3.0 *. 401.0) +. 598.0)
    o.Model.total_us

let test_vm_uses_requested_page_size () =
  let c =
    counts ~installs:1 ~removes:1 ~hits:0 ~misses:100 ~vm4:(1, 1, 10) ~vm8:(1, 1, 50) ()
  in
  let o4 = Model.overhead t2 (Model.VM 4096) c in
  let o8 = Model.overhead t2 (Model.VM 8192) c in
  Alcotest.(check bool) "8K pays for more false sharing" true
    (o8.Model.total_us > o4.Model.total_us);
  check_us "difference is 40 faults" (40.0 *. 563.75)
    (o8.Model.miss_us -. o4.Model.miss_us)

let test_vm_missing_page_size () =
  let c = counts () in
  Alcotest.(check bool) "unknown page size rejected" true
    (match Model.overhead t2 (Model.VM 1024) c with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- TrapPatch (Figure 5) --- *)

let test_tp_model () =
  let c = counts ~installs:4 ~removes:4 ~hits:10 ~misses:990 () in
  let o = Model.overhead t2 Model.TP c in
  check_us "hit" (10.0 *. 104.75) o.Model.hit_us;
  check_us "miss" (990.0 *. 104.75) o.Model.miss_us;
  check_us "install" (4.0 *. 22.0) o.Model.install_us;
  check_us "remove" (4.0 *. 22.0) o.Model.remove_us;
  (* Every write pays: TP's cost is driven by total writes, not hits. *)
  check_us "total" ((1000.0 *. 104.75) +. 176.0) o.Model.total_us

(* --- CodePatch (Figure 6) --- *)

let test_cp_model () =
  let c = counts ~installs:4 ~removes:4 ~hits:10 ~misses:990 () in
  let o = Model.overhead t2 Model.CP c in
  check_us "hit" (10.0 *. 2.75) o.Model.hit_us;
  check_us "miss" (990.0 *. 2.75) o.Model.miss_us;
  check_us "total" ((1000.0 *. 2.75) +. 176.0) o.Model.total_us

let test_cp_beats_tp_always () =
  (* Same counting variables: CP is strictly cheaper than TP whenever any
     write occurs (the lookup is a strict subset of TP's work). *)
  let c = counts ~installs:2 ~removes:2 ~hits:5 ~misses:95 () in
  let cp = Model.overhead t2 Model.CP c in
  let tp = Model.overhead t2 Model.TP c in
  Alcotest.(check bool) "cp < tp" true (cp.Model.total_us < tp.Model.total_us)

let test_cp_vs_nh_crossover () =
  (* The paper's §9 observation: for hit-dominated sessions CP beats NH.
     NH = hits * 131; CP = writes * 2.75 (+updates). With all writes
     hitting, CP wins by ~47x. *)
  let hot = counts ~hits:1000 ~misses:0 () in
  let nh = Model.overhead t2 Model.NH hot in
  let cp = Model.overhead t2 Model.CP hot in
  Alcotest.(check bool) "hot session: CP < NH" true (cp.Model.total_us < nh.Model.total_us);
  let cold = counts ~hits:1 ~misses:100000 () in
  let nh = Model.overhead t2 Model.NH cold in
  let cp = Model.overhead t2 Model.CP cold in
  Alcotest.(check bool) "cold session: NH < CP" true (nh.Model.total_us < cp.Model.total_us)

(* --- VirtualBreakpoint (EPT-style split views) --- *)

let test_vb_model () =
  (* Hand-computed with the sparcstation2 VB estimates
       (exit=46, view switch=12, view update=35):
       per fault: 46 + 12 + 2.75 = 60.75 over hits=10 + apm=20
       installs=3, protects=2 -> 3*(35+22) + 2*35
       removes=3, unprotects=2 -> 3*(35+22) + 2*35 *)
  let c = counts ~installs:3 ~removes:3 ~hits:10 ~misses:500 ~vm4:(2, 2, 20) () in
  let o = Model.overhead t2 (Model.VB 4096) c in
  check_us "hit" (10.0 *. 60.75) o.Model.hit_us;
  check_us "miss" (20.0 *. 60.75) o.Model.miss_us;
  check_us "install" ((3.0 *. 57.0) +. (2.0 *. 35.0)) o.Model.install_us;
  check_us "remove" ((3.0 *. 57.0) +. (2.0 *. 35.0)) o.Model.remove_us;
  check_us "total" 2304.5 o.Model.total_us;
  (* No guest mprotect pair anywhere: the view flip is hypervisor-side. *)
  Alcotest.(check bool) "no Protect row" true
    (List.assoc_opt "Protect" o.Model.breakdown = None);
  (match List.assoc_opt "VBExit" o.Model.breakdown with
  | Some us -> check_us "VBExit row" (30.0 *. 46.0) us
  | None -> Alcotest.fail "missing VBExit");
  match List.assoc_opt "VBViewUpdate" o.Model.breakdown with
  | Some us -> check_us "VBViewUpdate row" (10.0 *. 35.0) us
  | None -> Alcotest.fail "missing VBViewUpdate"

let test_vb_same_faults_as_vm () =
  (* VB's fault-generating sets are VM's at the same granularity — only
     the per-event prices differ, and each VB fault is far cheaper than a
     VM fault (no guest trap + signal dispatch). *)
  let c = counts ~hits:7 ~misses:300 ~vm4:(1, 1, 13) ~vm8:(1, 1, 41) () in
  let vm = Model.overhead t2 (Model.VM 4096) c in
  let vb = Model.overhead t2 (Model.VB 4096) c in
  check_us "same fault count, scaled price"
    (vm.Model.hit_us +. vm.Model.miss_us)
    ((vb.Model.hit_us +. vb.Model.miss_us) *. (563.75 /. 60.75));
  Alcotest.(check bool) "VB < VM" true (vb.Model.total_us < vm.Model.total_us);
  (* 8K granularity reads the 8K counting set, like VM-8K does. *)
  let vb8 = Model.overhead t2 (Model.VB 8192) c in
  check_us "8K false sharing" (28.0 *. 60.75)
    (vb8.Model.miss_us -. vb.Model.miss_us)

let test_vb_missing_granularity () =
  Alcotest.(check bool) "unknown granularity rejected" true
    (match Model.overhead t2 (Model.VB 1024) (counts ()) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- shared properties --- *)

let test_components_sum_to_total () =
  let c =
    counts ~installs:7 ~removes:6 ~hits:13 ~misses:1234 ~vm4:(3, 2, 17) ~vm8:(2, 1, 29) ()
  in
  List.iter
    (fun a ->
      let o = Model.overhead t2 a c in
      check_us
        (Model.name a ^ " components sum")
        o.Model.total_us
        (o.Model.hit_us +. o.Model.miss_us +. o.Model.install_us +. o.Model.remove_us);
      check_us
        (Model.name a ^ " breakdown sums")
        o.Model.total_us
        (List.fold_left (fun acc (_, us) -> acc +. us) 0.0 o.Model.breakdown))
    Model.default_approaches

let test_zero_timing_zero_overhead () =
  let c = counts ~installs:5 ~removes:5 ~hits:50 ~misses:5000 ~vm4:(1, 1, 7) ~vm8:(1, 1, 9) () in
  List.iter
    (fun a ->
      let o = Model.overhead Timing.zero a c in
      check_us (Model.name a ^ " zero timing") 0.0 o.Model.total_us)
    Model.default_approaches

let test_relative_overhead () =
  let c = counts ~hits:100 () in
  let o = Model.overhead t2 Model.NH c in
  (* 100 * 131us = 13.1ms; against a 13.1ms base run -> 1.0x. *)
  Alcotest.(check (float 1e-9)) "relative" 1.0 (Model.relative o ~base_ms:13.1);
  Alcotest.(check bool) "zero base rejected" true
    (match Model.relative o ~base_ms:0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_names () =
  Alcotest.(check string) "NH" "NH" (Model.name Model.NH);
  Alcotest.(check string) "VM-4K" "VM-4K" (Model.name (Model.VM 4096));
  Alcotest.(check string) "VM-8K" "VM-8K" (Model.name (Model.VM 8192));
  Alcotest.(check string) "odd size" "VM-512" (Model.name (Model.VM 512));
  Alcotest.(check string) "long" "VirtualMemory-4K" (Model.long_name (Model.VM 4096));
  Alcotest.(check string) "VB-4K" "VB-4K" (Model.name (Model.VB 4096));
  Alcotest.(check string) "VB long" "VirtualBreakpoint-8K"
    (Model.long_name (Model.VB 8192));
  Alcotest.(check int) "seven defaults" 7 (List.length Model.default_approaches)

let test_of_name () =
  (* Round-trip every default, plus remote forms. *)
  List.iter
    (fun a ->
      match Model.of_name (Model.name a) with
      | Ok a' ->
          Alcotest.(check string) (Model.name a) (Model.name a) (Model.name a')
      | Error e -> Alcotest.failf "%s did not parse: %s" (Model.name a) e)
    (Model.default_approaches
    @ [ Model.Remote Model.NH; Model.Remote (Model.VB 4096) ]);
  Alcotest.(check bool) "CP-rem rejected" true
    (Result.is_error (Model.of_name "CP-rem"));
  Alcotest.(check bool) "nested -rem rejected" true
    (Result.is_error (Model.of_name "TP-rem-rem"));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Model.of_name "QP-4K"))

(* --- Breakdown --- *)

let test_breakdown_percentages () =
  (* TP with many writes: TPFaultHandler should dominate at
     102 / 104.75 = 97.4% — the paper reports "consistently 97%". *)
  let c = counts ~installs:1 ~removes:1 ~hits:10 ~misses:9990 () in
  let o = Model.overhead t2 Model.TP c in
  let shares = Breakdown.mean_percentages [ o ] in
  (match List.assoc_opt "TPFaultHandler" shares with
  | Some pct -> Alcotest.(check bool) "TP fault ~97%" true (pct > 96.0 && pct < 98.0)
  | None -> Alcotest.fail "missing TPFaultHandler");
  (* CP: SoftwareLookup dominates (98-99% in the paper). *)
  let o = Model.overhead t2 Model.CP c in
  match Breakdown.mean_percentages [ o ] with
  | ("SoftwareLookup", pct) :: _ ->
      Alcotest.(check bool) "CP lookup > 98%" true (pct > 98.0)
  | _ -> Alcotest.fail "SoftwareLookup should dominate CP"

let test_breakdown_skips_zero_sessions () =
  let zero = Model.overhead t2 Model.NH (counts ()) in
  let busy = Model.overhead t2 Model.NH (counts ~hits:10 ()) in
  match Breakdown.mean_percentages [ zero; busy ] with
  | [ ("NHFaultHandler", pct) ] -> Alcotest.(check (float 1e-9)) "100%" 100.0 pct
  | _ -> Alcotest.fail "zero-cost session should be skipped"

let test_breakdown_empty () =
  Alcotest.(check int) "empty input" 0 (List.length (Breakdown.mean_percentages []))


(* --- Remote (§3.4 ptrace-style) variant --- *)

let test_remote_tp () =
  let c = counts ~installs:2 ~removes:2 ~hits:10 ~misses:90 () in
  let base = Model.overhead t2 Model.TP c in
  let remote = Model.overhead t2 (Model.Remote Model.TP) c in
  (* 100 faults x 2 x 200us on top of plain TP. *)
  check_us "switch cost added" (base.Model.total_us +. (100.0 *. 400.0))
    remote.Model.total_us;
  check_us "components still sum" remote.Model.total_us
    (remote.Model.hit_us +. remote.Model.miss_us +. remote.Model.install_us
   +. remote.Model.remove_us);
  match List.assoc_opt "ContextSwitch" remote.Model.breakdown with
  | Some us -> check_us "breakdown entry" 40000.0 us
  | None -> Alcotest.fail "no ContextSwitch in breakdown"

let test_remote_nh_only_hits () =
  let c = counts ~hits:5 ~misses:100000 () in
  let base = Model.overhead t2 Model.NH c in
  let remote = Model.overhead t2 (Model.Remote Model.NH) c in
  (* NH misses are free even remotely: only the 5 hits switch. *)
  check_us "only hits pay" (base.Model.total_us +. (5.0 *. 400.0)) remote.Model.total_us

let test_remote_vm_faults () =
  let c = counts ~hits:3 ~misses:500 ~vm4:(1, 1, 7) ~vm8:(1, 1, 9) () in
  let base = Model.overhead t2 (Model.VM 4096) c in
  let remote = Model.overhead t2 (Model.Remote (Model.VM 4096)) c in
  check_us "hits + active-page misses pay" (base.Model.total_us +. (10.0 *. 400.0))
    remote.Model.total_us

let test_remote_cp_rejected () =
  Alcotest.(check bool) "Remote CP rejected" true
    (match Model.overhead t2 (Model.Remote Model.CP) (counts ~hits:1 ()) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "nested Remote rejected" true
    (match Model.overhead t2 (Model.Remote (Model.Remote Model.TP)) (counts ()) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_remote_names () =
  Alcotest.(check string) "name" "TP-rem" (Model.name (Model.Remote Model.TP));
  Alcotest.(check string) "long" "VirtualMemory-4K-remote"
    (Model.long_name (Model.Remote (Model.VM 4096)))

let test_remote_vb_exit_doubling () =
  let c = counts ~hits:3 ~misses:100 ~vm4:(1, 1, 7) () in
  let base = Model.overhead t2 (Model.VB 4096) c in
  let remote = Model.overhead t2 (Model.Remote (Model.VB 4096)) c in
  (* Forwarding a VB event to a debugger process costs one extra exit,
     not a 2x context-switch round trip: the hypervisor already sits
     below the guest, so the event re-enters through the same door. *)
  check_us "one extra exit per fault" (base.Model.total_us +. (10.0 *. 46.0))
    remote.Model.total_us;
  (match List.assoc_opt "VBRemoteExit" remote.Model.breakdown with
  | Some us -> check_us "VBRemoteExit row" 460.0 us
  | None -> Alcotest.fail "no VBRemoteExit in breakdown");
  Alcotest.(check bool) "no ContextSwitch row" true
    (List.assoc_opt "ContextSwitch" remote.Model.breakdown = None);
  check_us "components still sum" remote.Model.total_us
    (remote.Model.hit_us +. remote.Model.miss_us +. remote.Model.install_us
   +. remote.Model.remove_us)

let () =
  Alcotest.run "model"
    [
      ( "figures 3-6",
        [
          Alcotest.test_case "NH model" `Quick test_nh_model;
          Alcotest.test_case "NH zero hits" `Quick test_nh_zero_hits_zero_cost;
          Alcotest.test_case "VM model" `Quick test_vm_model;
          Alcotest.test_case "VM page sizes" `Quick test_vm_uses_requested_page_size;
          Alcotest.test_case "VM missing page size" `Quick test_vm_missing_page_size;
          Alcotest.test_case "TP model" `Quick test_tp_model;
          Alcotest.test_case "CP model" `Quick test_cp_model;
          Alcotest.test_case "CP < TP" `Quick test_cp_beats_tp_always;
          Alcotest.test_case "CP vs NH crossover" `Quick test_cp_vs_nh_crossover;
        ] );
      ( "virtual breakpoints",
        [
          Alcotest.test_case "VB model" `Quick test_vb_model;
          Alcotest.test_case "VB faults = VM faults" `Quick
            test_vb_same_faults_as_vm;
          Alcotest.test_case "VB missing granularity" `Quick
            test_vb_missing_granularity;
        ] );
      ( "structure",
        [
          Alcotest.test_case "components sum" `Quick test_components_sum_to_total;
          Alcotest.test_case "zero timing" `Quick test_zero_timing_zero_overhead;
          Alcotest.test_case "relative overhead" `Quick test_relative_overhead;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "of_name" `Quick test_of_name;
        ] );
      ( "remote (3.4)",
        [
          Alcotest.test_case "TP" `Quick test_remote_tp;
          Alcotest.test_case "NH hits only" `Quick test_remote_nh_only_hits;
          Alcotest.test_case "VM faults" `Quick test_remote_vm_faults;
          Alcotest.test_case "CP rejected" `Quick test_remote_cp_rejected;
          Alcotest.test_case "names" `Quick test_remote_names;
          Alcotest.test_case "VB exit doubling" `Quick
            test_remote_vb_exit_doubling;
        ] );
      ( "breakdown",
        [
          Alcotest.test_case "percentages" `Quick test_breakdown_percentages;
          Alcotest.test_case "skips zero sessions" `Quick
            test_breakdown_skips_zero_sessions;
          Alcotest.test_case "empty" `Quick test_breakdown_empty;
        ] );
    ]
