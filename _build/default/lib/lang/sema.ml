exception Sema_error of string

let err line fmt =
  Format.kasprintf (fun msg -> raise (Sema_error (Printf.sprintf "line %d: %s" line msg))) fmt

let rec const_eval (e : Ast.expr) =
  match e.Ast.e with
  | Ast.E_int v -> Some v
  | Ast.E_unop (Ast.U_neg, e1) -> Option.map (fun v -> -v) (const_eval e1)
  | Ast.E_unop (Ast.U_bnot, e1) -> Option.map lnot (const_eval e1)
  | Ast.E_unop (Ast.U_not, e1) ->
      Option.map (fun v -> if v = 0 then 1 else 0) (const_eval e1)
  | Ast.E_binop (op, e1, e2) -> (
      match (const_eval e1, const_eval e2) with
      | Some a, Some b -> (
          match op with
          | Ast.B_add -> Some (a + b)
          | Ast.B_sub -> Some (a - b)
          | Ast.B_mul -> Some (a * b)
          | Ast.B_div -> if b = 0 then None else Some (a / b)
          | Ast.B_rem -> if b = 0 then None else Some (a mod b)
          | Ast.B_and -> Some (a land b)
          | Ast.B_or -> Some (a lor b)
          | Ast.B_xor -> Some (a lxor b)
          | Ast.B_shl -> Some (a lsl (b land 31))
          | Ast.B_shr -> Some ((a land 0xFFFFFFFF) lsr (b land 31))
          | Ast.B_land | Ast.B_lor | Ast.B_eq | Ast.B_ne | Ast.B_lt | Ast.B_le
          | Ast.B_gt | Ast.B_ge ->
              None)
      | _ -> None)
  | Ast.E_var _ | Ast.E_deref _ | Ast.E_addr _ | Ast.E_index _ | Ast.E_call _ ->
      None

type func_sig = { fs_id : int; fs_ret : Ast.ty; fs_params : Ast.ty list }

type env = {
  globals : (string, int) Hashtbl.t;  (* name -> global index *)
  global_tys : (Ast.ty * bool) array;  (* element type, is_array *)
  funcs : (string, func_sig) Hashtbl.t;
  (* Per-function state: *)
  mutable scopes : (string * int) list list;  (* name -> slot index *)
  mutable slots : Typed.slot list;  (* reversed *)
  mutable slot_count : int;
  mutable loop_depth : int;
  func_name : string;
}

let is_ptr = function Ast.T_ptr _ -> true | Ast.T_int | Ast.T_void -> false

let lookup_var env name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some slot -> Some (Typed.V_local slot)
        | None -> in_scopes rest)
  in
  match in_scopes env.scopes with
  | Some v -> Some v
  | None -> Option.map (fun i -> Typed.V_global i) (Hashtbl.find_opt env.globals name)

let var_info env = function
  | Typed.V_local i ->
      let slot = List.nth env.slots (env.slot_count - 1 - i) in
      (slot.Typed.sl_ty, slot.Typed.sl_is_array)
  | Typed.V_global i -> env.global_tys.(i)

(* Scale an index expression by the 4-byte element size. *)
let scaled idx =
  { Typed.te = Typed.T_binop (Ast.B_mul, idx, { Typed.te = Typed.T_int 4; ty = Ast.T_int });
    ty = Ast.T_int }

let elem_ty line = function
  | Ast.T_ptr t -> t
  | Ast.T_int -> err line "cannot dereference a non-pointer"
  | Ast.T_void -> err line "cannot dereference void"

let rec check_expr env (e : Ast.expr) : Typed.texpr =
  let line = e.Ast.e_line in
  match e.Ast.e with
  | Ast.E_int v -> { te = Typed.T_int v; ty = Ast.T_int }
  | Ast.E_var name -> (
      match lookup_var env name with
      | None -> err line "undefined variable %s" name
      | Some v ->
          let ty, is_array = var_info env v in
          if is_array then
            (* Array-to-pointer decay. *)
            { te = Typed.T_addr (Typed.TL_var v); ty = Ast.T_ptr ty }
          else { te = Typed.T_load (Typed.TL_var v); ty })
  | Ast.E_unop (op, e1) ->
      let t1 = check_expr env e1 in
      { te = Typed.T_unop (op, t1); ty = Ast.T_int }
  | Ast.E_binop (op, e1, e2) -> check_binop env line op e1 e2
  | Ast.E_deref e1 ->
      let t1 = check_expr env e1 in
      { te = Typed.T_load (Typed.TL_mem t1); ty = elem_ty line t1.ty }
  | Ast.E_addr lv ->
      let tlv, ty = check_lvalue env line lv in
      { te = Typed.T_addr tlv; ty = Ast.T_ptr ty }
  | Ast.E_index (base, idx) ->
      let addr, ty = index_address env line base idx in
      { te = Typed.T_load (Typed.TL_mem addr); ty }
  | Ast.E_call (name, args) -> check_call env line name args

and check_call env line name args =
  let targs = List.map (check_expr env) args in
  match Typed.builtin_of_name name with
  | Some b ->
      if List.length targs <> Typed.builtin_arity b then
        err line "%s expects %d argument(s)" name (Typed.builtin_arity b);
      { te = Typed.T_builtin (b, targs); ty = Typed.builtin_ret b }
  | None -> (
      match Hashtbl.find_opt env.funcs name with
      | None -> err line "undefined function %s" name
      | Some fs ->
          if List.length targs <> List.length fs.fs_params then
            err line "%s expects %d argument(s), got %d" name
              (List.length fs.fs_params) (List.length targs);
          { te = Typed.T_call (fs.fs_id, targs); ty = fs.fs_ret })

and check_binop env line op e1 e2 =
  let t1 = check_expr env e1 and t2 = check_expr env e2 in
  let mk te ty = { Typed.te; ty } in
  match op with
  | Ast.B_add -> (
      match (is_ptr t1.ty, is_ptr t2.ty) with
      | true, false -> mk (Typed.T_binop (op, t1, scaled t2)) t1.ty
      | false, true -> mk (Typed.T_binop (op, scaled t1, t2)) t2.ty
      | false, false -> mk (Typed.T_binop (op, t1, t2)) Ast.T_int
      | true, true -> err line "cannot add two pointers")
  | Ast.B_sub -> (
      match (is_ptr t1.ty, is_ptr t2.ty) with
      | true, false -> mk (Typed.T_binop (op, t1, scaled t2)) t1.ty
      | true, true ->
          (* ptr - ptr: byte difference divided by the element size. The
             difference of two same-object pointers is non-negative here or
             a small negative multiple of 4; a logical shift is wrong for
             negatives, so divide. *)
          let diff = mk (Typed.T_binop (op, t1, t2)) Ast.T_int in
          mk (Typed.T_binop (Ast.B_div, diff, mk (Typed.T_int 4) Ast.T_int)) Ast.T_int
      | false, true -> err line "cannot subtract a pointer from an integer"
      | false, false -> mk (Typed.T_binop (op, t1, t2)) Ast.T_int)
  | Ast.B_mul | Ast.B_div | Ast.B_rem | Ast.B_and | Ast.B_or | Ast.B_xor
  | Ast.B_shl | Ast.B_shr ->
      mk (Typed.T_binop (op, t1, t2)) Ast.T_int
  | Ast.B_land | Ast.B_lor | Ast.B_eq | Ast.B_ne | Ast.B_lt | Ast.B_le
  | Ast.B_gt | Ast.B_ge ->
      mk (Typed.T_binop (op, t1, t2)) Ast.T_int

and index_address env line base idx =
  let tbase = check_expr env base in
  let tidx = check_expr env idx in
  if is_ptr tidx.ty then err line "array index must be an integer";
  let ty = elem_ty line tbase.ty in
  let addr =
    { Typed.te = Typed.T_binop (Ast.B_add, tbase, scaled tidx); ty = tbase.ty }
  in
  (addr, ty)

and check_lvalue env line = function
  | Ast.L_var name -> (
      match lookup_var env name with
      | None -> err line "undefined variable %s" name
      | Some v ->
          let ty, is_array = var_info env v in
          if is_array then err line "cannot assign to an array";
          (Typed.TL_var v, ty))
  | Ast.L_deref e ->
      let t = check_expr env e in
      (Typed.TL_mem t, elem_ty line t.ty)
  | Ast.L_index (base, idx) ->
      let addr, ty = index_address env line base idx in
      (Typed.TL_mem addr, ty)

(* --- statements --- *)

let add_slot env (d : Ast.var_decl) =
  let line = d.Ast.v_line in
  if Typed.builtin_of_name d.Ast.v_name <> None then
    err line "%s shadows a builtin function" d.Ast.v_name;
  let index = env.slot_count in
  (* Shadowed names get a ".n" suffix so debug info stays unambiguous. *)
  let unique =
    let taken name = List.exists (fun s -> s.Typed.sl_name = name) env.slots in
    if not (taken d.Ast.v_name) then d.Ast.v_name
    else
      let rec go i =
        let candidate = Printf.sprintf "%s.%d" d.Ast.v_name i in
        if taken candidate then go (i + 1) else candidate
      in
      go 1
  in
  let words = match d.Ast.v_array with Some n -> n | None -> 1 in
  let static_init =
    if not d.Ast.v_static then 0
    else
      match d.Ast.v_init with
      | None -> 0
      | Some e -> (
          match const_eval e with
          | Some v -> v
          | None -> err line "static initializer must be a constant")
  in
  let slot =
    {
      Typed.sl_name = unique;
      sl_source_name = d.Ast.v_name;
      sl_ty = d.Ast.v_ty;
      sl_words = words;
      sl_is_array = d.Ast.v_array <> None;
      sl_static = d.Ast.v_static;
      sl_param_index = -1;
      sl_static_init = static_init;
    }
  in
  env.slots <- slot :: env.slots;
  env.slot_count <- env.slot_count + 1;
  (match env.scopes with
  | scope :: rest -> env.scopes <- ((d.Ast.v_name, index) :: scope) :: rest
  | [] -> assert false);
  index

let rec check_stmt env (s : Ast.stmt) : Typed.tstmt list =
  let line = s.Ast.s_line in
  match s.Ast.s with
  | Ast.S_decl d ->
      if d.Ast.v_ty = Ast.T_void && d.Ast.v_array = None then
        err line "cannot declare a void variable";
      let init =
        match d.Ast.v_init with
        | Some e when not d.Ast.v_static -> Some (check_expr env e)
        | Some _ | None -> None
      in
      let index = add_slot env d in
      (match init with
      | Some te -> [ Typed.TS_store (Typed.TL_var (Typed.V_local index), te) ]
      | None -> [])
  | Ast.S_assign (lv, e) ->
      let tlv, _ty = check_lvalue env line lv in
      let te = check_expr env e in
      if te.Typed.ty = Ast.T_void then err line "cannot assign a void value";
      [ Typed.TS_store (tlv, te) ]
  | Ast.S_expr e -> [ Typed.TS_expr (check_expr env e) ]
  | Ast.S_if (cond, then_blk, else_blk) ->
      let tc = check_expr env cond in
      let tt = check_block env then_blk in
      let te = match else_blk with Some b -> check_block env b | None -> [] in
      [ Typed.TS_if (tc, tt, te) ]
  | Ast.S_while (cond, body) ->
      let tc = check_expr env cond in
      env.loop_depth <- env.loop_depth + 1;
      let tb = check_block env body in
      env.loop_depth <- env.loop_depth - 1;
      [ Typed.TS_loop { cond = Some tc; body = tb; step = [] } ]
  | Ast.S_for (init, cond, step, body) ->
      (* The init declaration scopes over the loop: open a scope around the
         whole desugaring. *)
      env.scopes <- [] :: env.scopes;
      let t_init = match init with Some s -> check_stmt env s | None -> [] in
      let t_cond = Option.map (check_expr env) cond in
      env.loop_depth <- env.loop_depth + 1;
      let t_body = check_block env body in
      env.loop_depth <- env.loop_depth - 1;
      let t_step = match step with Some s -> check_stmt env s | None -> [] in
      env.scopes <- List.tl env.scopes;
      t_init @ [ Typed.TS_loop { cond = t_cond; body = t_body; step = t_step } ]
  | Ast.S_return e -> [ Typed.TS_return (Option.map (check_expr env) e) ]
  | Ast.S_break ->
      if env.loop_depth = 0 then err line "break outside a loop";
      [ Typed.TS_break ]
  | Ast.S_continue ->
      if env.loop_depth = 0 then err line "continue outside a loop";
      [ Typed.TS_continue ]
  | Ast.S_block b -> check_block env b

and check_block env block =
  env.scopes <- [] :: env.scopes;
  let stmts = List.concat_map (check_stmt env) block in
  env.scopes <- List.tl env.scopes;
  stmts

(* --- top level --- *)

let max_params = 6

let check_func globals global_tys funcs (f : Ast.func) fs =
  if List.length f.Ast.f_params > max_params then
    err f.Ast.f_line "%s: more than %d parameters" f.Ast.f_name max_params;
  let env =
    {
      globals;
      global_tys;
      funcs;
      scopes = [ [] ];
      slots = [];
      slot_count = 0;
      loop_depth = 0;
      func_name = f.Ast.f_name;
    }
  in
  ignore env.func_name;
  (* Parameters become the first slots, flagged with their index. *)
  List.iteri
    (fun i (name, ty) ->
      let idx =
        add_slot env
          {
            Ast.v_name = name;
            v_ty = ty;
            v_array = None;
            v_static = false;
            v_init = None;
            v_line = f.Ast.f_line;
          }
      in
      let slot = List.hd env.slots in
      env.slots <- { slot with Typed.sl_param_index = i } :: List.tl env.slots;
      ignore idx)
    f.Ast.f_params;
  let body = check_block env f.Ast.f_body in
  {
    Typed.tf_id = fs.fs_id;
    tf_name = f.Ast.f_name;
    tf_ret = f.Ast.f_ret;
    tf_param_count = List.length f.Ast.f_params;
    tf_slots = Array.of_list (List.rev env.slots);
    tf_body = body;
  }

let analyze (prog : Ast.program) =
  try
    let globals = Hashtbl.create 16 in
    let global_list =
      List.mapi
        (fun i (d : Ast.var_decl) ->
          if Hashtbl.mem globals d.Ast.v_name then
            err d.Ast.v_line "duplicate global %s" d.Ast.v_name;
          if d.Ast.v_ty = Ast.T_void then err d.Ast.v_line "void global";
          Hashtbl.add globals d.Ast.v_name i;
          let init =
            match d.Ast.v_init with
            | None -> 0
            | Some e -> (
                match const_eval e with
                | Some v -> v
                | None -> err d.Ast.v_line "global initializer must be a constant")
          in
          {
            Typed.tg_name = d.Ast.v_name;
            tg_ty = d.Ast.v_ty;
            tg_words = (match d.Ast.v_array with Some n -> n | None -> 1);
            tg_is_array = d.Ast.v_array <> None;
            tg_init = init;
          })
        prog.Ast.globals
    in
    let global_tys =
      Array.of_list
        (List.map (fun g -> (g.Typed.tg_ty, g.Typed.tg_is_array)) global_list)
    in
    let funcs = Hashtbl.create 16 in
    List.iteri
      (fun i (f : Ast.func) ->
        if Hashtbl.mem funcs f.Ast.f_name then
          err f.Ast.f_line "duplicate function %s" f.Ast.f_name;
        if Typed.builtin_of_name f.Ast.f_name <> None then
          err f.Ast.f_line "%s is a builtin" f.Ast.f_name;
        Hashtbl.add funcs f.Ast.f_name
          { fs_id = i; fs_ret = f.Ast.f_ret; fs_params = List.map snd f.Ast.f_params })
      prog.Ast.funcs;
    (match Hashtbl.find_opt funcs "main" with
    | None -> raise (Sema_error "no main function")
    | Some fs ->
        if fs.fs_params <> [] then raise (Sema_error "main must take no parameters"));
    let tfuncs =
      List.map
        (fun (f : Ast.func) ->
          check_func globals global_tys funcs f (Hashtbl.find funcs f.Ast.f_name))
        prog.Ast.funcs
    in
    Ok { Typed.t_globals = Array.of_list global_list; t_funcs = Array.of_list tfuncs }
  with Sema_error msg -> Error msg
