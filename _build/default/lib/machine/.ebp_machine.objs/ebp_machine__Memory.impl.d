lib/machine/memory.ml: Bytes Char Ebp_util Hashtbl List
