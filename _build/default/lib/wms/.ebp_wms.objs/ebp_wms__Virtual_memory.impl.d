lib/wms/virtual_memory.ml: Ebp_machine Ebp_util Hashtbl List Monitor_map Option Timing Wms
