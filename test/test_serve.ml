(* Tests for Ebp_serve: the EBPS frame codec (round-trip, strict
   rejection of damage), the server core (bounded admission, round-robin
   fairness, coalescing, graceful drain), the resident trace store, and a
   real forked daemon exercised over its socket — including bit-identity
   of served reports against the batch pipeline for all five workloads. *)

module P = Ebp_serve.Protocol
module Server = Ebp_serve.Server
module Core = Ebp_serve.Server.Core
module Client = Ebp_serve.Client
module Store = Ebp_serve.Trace_store
module Render = Ebp_serve.Render
module Replay = Ebp_sessions.Replay
module Workload = Ebp_workloads.Workload
module Metrics = Ebp_obs.Metrics
module Fault = Ebp_util.Fault

(* --- helpers --- *)

let tiny_src n =
  Printf.sprintf
    "int g;\nint main() {\n  int i;\n  for (i = 0; i < %d; i = i + 1) { g = g + i; }\n  return 0;\n}\n"
    n

let sessions_query ?(n = 8) ?(seed = 1) ?(engine = "indexed") () =
  P.Sessions_query
    {
      name = Printf.sprintf "tiny%d" n;
      source = tiny_src n;
      seed;
      engine;
      keep_hitless = false;
    }

let counter_value snapshot name =
  match
    List.find_opt (fun (n, _, _) -> n = name) snapshot.Metrics.counters
  with
  | Some (_, v, _) -> v
  | None -> Alcotest.failf "counter %s not in snapshot" name

(* Scope the metrics registry around a test body; the registry is global,
   so leave it disabled and empty for the other suites. *)
let with_metrics f =
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    f

let default_core ?(queue_limit = 16) ?(domains = 1) () =
  Core.create
    { Core.default_config with queue_limit; domains; lru_capacity = 4 }

(* --- frame codec --- *)

let frame_gen =
  let open QCheck2.Gen in
  let str = string_size ~gen:char (0 -- 60) in
  let small = 0 -- 10_000 in
  let code =
    oneofl
      [
        P.Bad_request; P.Unknown_workload; P.Unknown_artifact;
        P.Unsupported_version; P.Shutting_down; P.Internal;
      ]
  in
  frequency
    [
      (2, map2 (fun t v -> P.Request (P.Hello { tenant = t; max_version = v })) str small);
      (1, return (P.Request P.Ping));
      ( 3,
        map3
          (fun name source seed ->
            P.Request
              (P.Sessions_query
                 { name; source; seed; engine = "indexed"; keep_hitless = seed mod 2 = 0 }))
          str str small );
      ( 2,
        map2
          (fun ws artifact -> P.Request (P.Experiment_query { workloads = ws; artifact }))
          (list_size (0 -- 5) str)
          str );
      ( 2,
        let* name = str and* source = str and* seed = small in
        let* expr = str
        and* engine = oneofl [ "auto"; "indexed"; "scan" ]
        and* format = oneofl [ "table"; "ndjson" ] in
        return (P.Request (P.Query { name; source; seed; expr; engine; format }))
      );
      ( 2,
        let* name = str and* source = str and* seed = small in
        let* expr = str
        and* format = oneofl [ "table"; "ndjson" ]
        and* min_events = small in
        return
          (P.Request (P.Live_query { name; source; seed; expr; format; min_events }))
      );
      (1, return (P.Request P.Stats_query));
      (1, return (P.Request P.Shutdown));
      ( 1,
        map2 (fun v s -> P.Response (P.Hello_ok { version = v; server = s })) small str );
      (1, return (P.Response P.Pong));
      (3, map (fun s -> P.Response (P.Report s)) str);
      ( 2,
        let* report = str and* high_water = small in
        let* complete = bool in
        return (P.Response (P.Live_report { report; high_water; complete })) );
      (1, map (fun s -> P.Response (P.Stats s)) str);
      ( 2,
        map2 (fun c m -> P.Response (P.Error_resp { code = c; message = m })) code str );
      ( 1,
        map2 (fun q l -> P.Response (P.Overloaded { queued = q; limit = l })) small small );
      (1, return (P.Response P.Shutdown_ack));
    ]

let frame_print f = Format.asprintf "%a" P.pp_frame f

let prop_frame_roundtrip =
  QCheck2.Test.make ~name:"frame codec roundtrip" ~count:500
    ~print:frame_print frame_gen (fun frame ->
      let enc = P.encode frame in
      match P.decode ~buf:enc ~pos:0 ~len:(String.length enc) with
      | `Frame (frame', consumed) ->
          P.equal_frame frame frame' && consumed = String.length enc
      | `Need_more | `Corrupt _ -> false)

let prop_frame_roundtrip_offset =
  QCheck2.Test.make ~name:"frame codec roundtrip at an offset" ~count:100
    ~print:frame_print frame_gen (fun frame ->
      (* The decoder must work mid-stream: garbage before [pos] and a
         following frame after are both ignored. *)
      let enc = P.encode frame in
      let buf = "JUNK" ^ enc ^ P.encode (P.Response P.Pong) in
      match P.decode ~buf ~pos:4 ~len:(String.length buf - 4) with
      | `Frame (frame', consumed) ->
          P.equal_frame frame frame' && consumed = String.length enc
      | `Need_more | `Corrupt _ -> false)

let prop_frame_truncation =
  QCheck2.Test.make ~name:"every truncation is Need_more or Corrupt"
    ~count:100 ~print:frame_print frame_gen (fun frame ->
      let enc = P.encode frame in
      let ok = ref true in
      for len = 0 to String.length enc - 1 do
        match P.decode ~buf:enc ~pos:0 ~len with
        | `Frame _ -> ok := false
        | `Need_more | `Corrupt _ -> ()
      done;
      !ok)

let prop_frame_bitflip =
  QCheck2.Test.make ~name:"every bit flip is rejected" ~count:60
    ~print:frame_print frame_gen (fun frame ->
      let enc = P.encode frame in
      let ok = ref true in
      for bit = 0 to (8 * String.length enc) - 1 do
        let b = Bytes.of_string enc in
        let i = bit / 8 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
        let buf = Bytes.to_string b in
        match P.decode ~buf ~pos:0 ~len:(String.length buf) with
        | `Frame _ ->
            (* CRC-32 detects every single-bit error; a successful decode
               of a flipped frame is a codec bug. *)
            ok := false
        | `Need_more | `Corrupt _ -> ()
      done;
      !ok)

let test_frame_oversized () =
  (* Handcraft an envelope claiming a payload far past the limit: the
     decoder must reject the claim before trying to buffer it. *)
  let b = Buffer.create 16 in
  Buffer.add_string b P.magic;
  Buffer.add_char b '\001';
  Buffer.add_char b '\002';
  (* 1 GiB, LEB128 *)
  List.iter (Buffer.add_char b) [ '\x80'; '\x80'; '\x80'; '\x80'; '\x04' ];
  let buf = Buffer.contents b in
  match P.decode ~buf ~pos:0 ~len:(String.length buf) with
  | `Corrupt msg ->
      if not (String.length msg > 0) then Alcotest.fail "empty reason"
  | `Need_more -> Alcotest.fail "oversized length must not ask for more"
  | `Frame _ -> Alcotest.fail "oversized frame decoded"

let test_frame_fault_point () =
  Fault.configure
    [ { Fault.pattern = "serve.frame.decode"; trigger = Fault.Nth 1; action = Fault.Fail } ];
  Fun.protect ~finally:Fault.reset @@ fun () ->
  let enc = P.encode (P.Response P.Pong) in
  (match P.decode ~buf:enc ~pos:0 ~len:(String.length enc) with
  | `Corrupt _ -> ()
  | _ -> Alcotest.fail "injected decode fault did not fire");
  match P.decode ~buf:enc ~pos:0 ~len:(String.length enc) with
  | `Frame (P.Response P.Pong, _) -> ()
  | _ -> Alcotest.fail "decode did not recover after nth=1 fault"

(* --- server core: admission, fairness, coalescing, drain --- *)

let test_overload () =
  let core = default_core ~queue_limit:3 () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let overloaded = ref 0 and replies = ref 0 in
  (* Distinct seeds so coalescing cannot shrink the batch to one reply. *)
  for seed = 1 to 8 do
    Core.submit core ~tenant:"flood"
      ~reply:(function
        | P.Overloaded { limit; _ } ->
            incr overloaded;
            Alcotest.(check int) "limit echoed" 3 limit
        | P.Report _ -> incr replies
        | r -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" P.pp_frame (P.Response r)))
      (sessions_query ~seed ())
  done;
  Alcotest.(check int) "rejected beyond the bound" 5 !overloaded;
  Alcotest.(check int) "nothing answered before dispatch" 0 !replies;
  Alcotest.(check int) "admitted" 3 (Core.pending core);
  Core.drain core;
  Alcotest.(check int) "all admitted queries answered" 3 !replies;
  Alcotest.(check int) "queue empty" 0 (Core.pending core)

let test_round_robin_fairness () =
  let core = default_core () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let order = ref [] in
  let submit tenant tag seed =
    Core.submit core ~tenant
      ~reply:(function
        | P.Report _ -> order := tag :: !order
        | r -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" P.pp_frame (P.Response r)))
      (sessions_query ~seed ())
  in
  (* Tenant a floods first; tenant b arrives later with one query. Round-
     robin must serve b second, not after all of a's backlog. *)
  submit "a" "a1" 1;
  submit "a" "a2" 2;
  submit "a" "a3" 3;
  submit "b" "b1" 4;
  Core.drain core;
  Alcotest.(check (list string))
    "round-robin interleaves tenants" [ "a1"; "b1"; "a2"; "a3" ]
    (List.rev !order)

let test_coalescing () =
  with_metrics @@ fun () ->
  let core = default_core () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let texts = ref [] in
  let q = sessions_query ~seed:7 () in
  List.iter
    (fun tenant ->
      Core.submit core ~tenant
        ~reply:(function
          | P.Report text -> texts := text :: !texts
          | r -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" P.pp_frame (P.Response r)))
        q)
    [ "a"; "b"; "c"; "a"; "b" ];
  Alcotest.(check int) "five queued" 5 (Core.pending core);
  let progressed = Core.dispatch_one core in
  Alcotest.(check bool) "dispatched" true progressed;
  Alcotest.(check int) "one batch answered everything" 0 (Core.pending core);
  Alcotest.(check int) "five replies" 5 (List.length !texts);
  (match !texts with
  | first :: rest ->
      List.iter (fun t -> Alcotest.(check string) "identical reports" first t) rest
  | [] -> Alcotest.fail "no replies");
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "one execution batch" 1 (counter_value snap "serve.batches");
  Alcotest.(check int) "four riders coalesced" 4 (counter_value snap "serve.coalesced")

let test_drain_and_refuse () =
  let core = default_core () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let answered = ref 0 in
  Core.submit core ~tenant:"t"
    ~reply:(function P.Report _ -> incr answered | _ -> Alcotest.fail "q1")
    (sessions_query ~seed:1 ());
  let acked = ref false in
  Core.submit core ~tenant:"t"
    ~reply:(function P.Shutdown_ack -> acked := true | _ -> Alcotest.fail "ack")
    P.Shutdown;
  Alcotest.(check bool) "shutdown acked" true !acked;
  Alcotest.(check bool) "draining" true (Core.draining core);
  let refused = ref false in
  Core.submit core ~tenant:"t"
    ~reply:(function
      | P.Error_resp { code = P.Shutting_down; _ } -> refused := true
      | _ -> Alcotest.fail "must refuse during drain")
    (sessions_query ~seed:2 ());
  Alcotest.(check bool) "new query refused" true !refused;
  Core.drain core;
  Alcotest.(check int) "queued query still answered" 1 !answered

let test_control_requests () =
  let core = default_core () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let got = ref None in
  let reply r = got := Some r in
  Core.submit core ~tenant:"t" ~reply P.Ping;
  (match !got with Some P.Pong -> () | _ -> Alcotest.fail "ping");
  Core.submit core ~tenant:"t" ~reply (P.Hello { tenant = "t"; max_version = 1 });
  (match !got with
  | Some (P.Hello_ok { version = 1; _ }) -> ()
  | _ -> Alcotest.fail "hello");
  Core.submit core ~tenant:"t" ~reply (P.Hello { tenant = "t"; max_version = 0 });
  (match !got with
  | Some (P.Error_resp { code = P.Unsupported_version; _ }) -> ()
  | _ -> Alcotest.fail "version negotiation must refuse max_version 0");
  Core.submit core ~tenant:"t" ~reply
    (P.Experiment_query { workloads = [ "no-such" ]; artifact = "table1" });
  Core.drain core;
  (match !got with
  | Some (P.Error_resp { code = P.Unknown_workload; _ }) -> ()
  | _ -> Alcotest.fail "unknown workload");
  Core.submit core ~tenant:"t" ~reply
    (P.Experiment_query { workloads = [ "circuit" ]; artifact = "tableX" });
  Core.drain core;
  match !got with
  | Some (P.Error_resp { code = P.Unknown_artifact; _ }) -> ()
  | _ -> Alcotest.fail "unknown artifact"

let query_request ?(expr = "count") ?(engine = "auto") ?(format = "table") () =
  P.Query { name = "tiny8"; source = tiny_src 8; seed = 1; expr; engine; format }

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_query_requests () =
  let core = default_core () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let got = ref None in
  let reply r = got := Some r in
  Core.submit core ~tenant:"t" ~reply (query_request ());
  Core.drain core;
  (* The served rendering is byte-identical to the batch query pipeline
     computed in this process. *)
  (match !got with
  | Some (P.Report served) ->
      let expected =
        match Ebp_trace.Recorder.record_source ~seed:1 (tiny_src 8) with
        | Error msg -> Alcotest.fail msg
        | Ok (_, trace, _) -> (
            match Ebp_query.Query.parse "count" with
            | Error _ -> Alcotest.fail "bench query must parse"
            | Ok q ->
                let e = Ebp_query.Query.run trace q in
                Ebp_query.Query.render ~format:Ebp_query.Query.Table trace q
                  e.Ebp_query.Query.raw)
      in
      Alcotest.(check string) "served = batch" expected served
  | _ -> Alcotest.fail "query must produce a report");
  (* A malformed query is a Bad_request carrying the one-line caret
     diagnostic — never a disconnect or an exception. *)
  Core.submit core ~tenant:"t" ~reply (query_request ~expr:"count where pc >" ());
  Core.drain core;
  (match !got with
  | Some (P.Error_resp { code = P.Bad_request; message }) ->
      if not (contains_sub message "query:1:17") then
        Alcotest.failf "diagnostic lacks caret position: %s" message
  | _ -> Alcotest.fail "malformed query must be bad-request");
  (* So is an unknown engine or format string. *)
  Core.submit core ~tenant:"t" ~reply (query_request ~engine:"warp" ());
  Core.drain core;
  (match !got with
  | Some (P.Error_resp { code = P.Bad_request; _ }) -> ()
  | _ -> Alcotest.fail "unknown engine must be bad-request");
  Core.submit core ~tenant:"t" ~reply (query_request ~format:"xml" ());
  Core.drain core;
  (match !got with
  | Some (P.Error_resp { code = P.Bad_request; _ }) -> ()
  | _ -> Alcotest.fail "unknown format must be bad-request");
  (* The core is unharmed by the errors. *)
  Core.submit core ~tenant:"t" ~reply P.Ping;
  match !got with
  | Some P.Pong -> ()
  | _ -> Alcotest.fail "ping after query errors"

(* A live query against the core: the sealed prefix must answer before
   the recording completes, the high-water mark must strictly advance
   across polls, the planner must record partial_index decisions, and
   the completed recording's report must be byte-identical to the batch
   query path. *)
let test_live_query () =
  with_metrics @@ fun () ->
  let core = default_core () in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  (* Enough iterations to out-grow one 64Ki-event block, so the first
     poll observes an incomplete prefix. *)
  let source = tiny_src 60_000 in
  let live min_events =
    let got = ref None in
    Core.submit core ~tenant:"t"
      ~reply:(fun r -> got := Some r)
      (P.Live_query
         { name = "livetiny"; source; seed = 1; expr = "count";
           format = "table"; min_events });
    Core.drain core;
    match !got with
    | Some (P.Live_report { report; high_water; complete }) ->
        (report, high_water, complete)
    | Some _ -> Alcotest.fail "unexpected live reply"
    | None -> Alcotest.fail "no live reply"
  in
  let _, first_hw, first_complete = live 0 in
  Alcotest.(check bool) "first prefix non-empty" true (first_hw > 0);
  Alcotest.(check bool) "answered before completion" false first_complete;
  let rec drive prev polls =
    if polls > 100 then Alcotest.fail "live recording never completed";
    let report, hw, complete = live prev in
    if complete then (report, hw)
    else begin
      Alcotest.(check bool) "high water strictly advances" true (hw > prev);
      drive hw (polls + 1)
    end
  in
  let final_report, final_hw = drive first_hw 0 in
  Alcotest.(check bool) "high water grew to completion" true
    (final_hw > first_hw);
  let batch =
    let got = ref None in
    Core.submit core ~tenant:"t"
      ~reply:(fun r -> got := Some r)
      (P.Query
         { name = "livetiny"; source; seed = 1; expr = "count";
           engine = "auto"; format = "table" });
    Core.drain core;
    match !got with
    | Some (P.Report text) -> text
    | _ -> Alcotest.fail "batch query must produce a report"
  in
  Alcotest.(check string) "completed live report = batch report" batch
    final_report;
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "partial_index decisions recorded" true
    (counter_value snap "planner.decision.partial_index" >= 1);
  (* A malformed live expression is a Bad_request, like Query. *)
  let got = ref None in
  Core.submit core ~tenant:"t"
    ~reply:(fun r -> got := Some r)
    (P.Live_query
       { name = "livetiny"; source; seed = 1; expr = "count where";
         format = "table"; min_events = 0 });
  Core.drain core;
  match !got with
  | Some (P.Error_resp { code = P.Bad_request; _ }) -> ()
  | _ -> Alcotest.fail "malformed live query must be bad-request"

(* --- trace store --- *)

let test_store_lru () =
  with_metrics @@ fun () ->
  let store = Store.create ~capacity:2 () in
  let fetch n =
    match Store.fetch store ~name:(Printf.sprintf "tiny%d" n) ~source:(tiny_src n) ~seed:1 with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "fetch %d: %s" n msg
  in
  fetch 5;
  fetch 6;
  Alcotest.(check int) "at capacity" 2 (Store.resident store);
  fetch 5 (* warm *);
  fetch 7 (* evicts 6, the least recently used *);
  Alcotest.(check int) "still at capacity" 2 (Store.resident store);
  fetch 5 (* warm: must have survived the eviction *);
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "cold records" 3 (counter_value snap "serve.store.cold_records");
  Alcotest.(check int) "warm hits" 2 (counter_value snap "serve.store.warm_hits");
  Alcotest.(check int) "evictions" 1 (counter_value snap "serve.store.evictions")

let test_store_disk_tier () =
  with_metrics @@ fun () ->
  let dir = Filename.temp_file "ebp-serve-store" "" in
  Sys.remove dir;
  (* A fresh store finds what an earlier store instance left on disk:
     decoded once per process, recorded once per fleet. *)
  let store1 = Store.create ~capacity:2 ~cache_dir:dir () in
  (match Store.fetch store1 ~name:"tiny9" ~source:(tiny_src 9) ~seed:1 with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let store2 = Store.create ~capacity:2 ~cache_dir:dir () in
  (match Store.fetch store2 ~name:"tiny9" ~source:(tiny_src 9) ~seed:1 with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "one cold record" 1 (counter_value snap "serve.store.cold_records");
  Alcotest.(check int) "one disk hit" 1 (counter_value snap "serve.store.disk_hits");
  ignore (Ebp_trace.Trace_cache.clear ~dir : int * int)

(* --- the real daemon over its socket --- *)

let temp_socket () =
  let path = Filename.temp_file "ebp-serve" ".sock" in
  Sys.remove path;
  path

let fork_server ?(configure_faults = "") ~socket_path config =
  match Unix.fork () with
  | 0 ->
      (* Child: become the daemon. _exit skips the parent's at_exit
         (alcotest reporting) machinery. *)
      (try
         if configure_faults <> "" then
           ignore (Fault.configure_spec configure_faults : (unit, string) result);
         match Server.serve ~socket_path config () with
         | Ok () -> Unix._exit 0
         | Error _ -> Unix._exit 1
       with _ -> Unix._exit 2)
  | pid -> pid

let wait_exit pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> -1

let test_socket_bit_identity () =
  let socket_path = temp_socket () in
  let cache_dir = Filename.temp_file "ebp-serve-cache" "" in
  Sys.remove cache_dir;
  let pid =
    fork_server ~socket_path
      { Core.default_config with domains = 2; cache_dir = Some cache_dir }
  in
  Fun.protect ~finally:(fun () ->
      ignore (Ebp_trace.Trace_cache.clear ~dir:cache_dir : int * int))
  @@ fun () ->
  let result =
    Client.with_client ~tenant:"identity" ~socket_path (fun c ->
        List.fold_left
          (fun acc (w : Workload.t) ->
            match acc with
            | Error _ -> acc
            | Ok () -> (
                let req =
                  P.Sessions_query
                    {
                      name = w.Workload.name;
                      source = w.Workload.source;
                      seed = w.Workload.seed;
                      engine = "indexed";
                      keep_hitless = false;
                    }
                in
                match Client.request c req with
                | Error msg -> Error (w.Workload.name ^ ": " ^ msg)
                | Ok (P.Report served) -> (
                    (* The batch pipeline, computed in this process. *)
                    match
                      Ebp_trace.Recorder.record_source ~seed:w.Workload.seed
                        w.Workload.source
                    with
                    | Error msg -> Error msg
                    | Ok (_, trace, _) ->
                        let batch =
                          Render.sessions_report
                            (Replay.discover_and_replay trace)
                        in
                        if String.equal served batch then Ok ()
                        else Error (w.Workload.name ^ ": served <> batch"))
                | Ok r ->
                    Error
                      (Format.asprintf "%s: unexpected %a" w.Workload.name
                         P.pp_frame (P.Response r))))
          (Ok ()) Workload.all)
  in
  (match result with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Client.with_client ~socket_path (fun c -> Client.request c P.Shutdown) with
  | Ok P.Shutdown_ack -> ()
  | Ok r -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" P.pp_frame (P.Response r))
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "daemon drained and exited cleanly" 0 (wait_exit pid)

let test_socket_flood_overload () =
  let socket_path = temp_socket () in
  let pid =
    fork_server ~socket_path { Core.default_config with queue_limit = 2 }
  in
  (* Pipeline a flood of identical queries in one write: far more than the
     admission bound. The daemon must answer every one — some Report (the
     admitted, coalesced batch), the rest explicit Overloaded — and stay
     alive. Responses may interleave across the rejection/report boundary,
     so only the multiset is asserted. *)
  let flood = 30 in
  (* Wait for the daemon via a throwaway client, then flood on a raw
     socket: pipelining is part of the protocol surface the Client
     deliberately doesn't use. *)
  (match Client.with_client ~socket_path (fun c -> Client.request c P.Ping) with
  | Ok P.Pong -> ()
  | _ -> Alcotest.fail "ping before flood");
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  let q = P.encode_request (sessions_query ~seed:3 ()) in
  let payload = String.concat "" (List.init flood (fun _ -> q)) in
  let rec write_all pos =
    if pos < String.length payload then
      write_all (pos + Unix.write_substring fd payload pos (String.length payload - pos))
  in
  write_all 0;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let reports = ref 0 and overloaded = ref 0 in
  let rec read_frames () =
    if !reports + !overloaded < flood then begin
      let s = Buffer.contents buf in
      match P.decode ~buf:s ~pos:0 ~len:(String.length s) with
      | `Frame (P.Response (P.Report _), consumed) ->
          incr reports;
          consume s consumed
      | `Frame (P.Response (P.Overloaded { limit; _ }), consumed) ->
          incr overloaded;
          Alcotest.(check int) "limit echoed" 2 limit;
          consume s consumed
      | `Frame (f, _) ->
          Alcotest.failf "unexpected %s" (Format.asprintf "%a" P.pp_frame f)
      | `Corrupt msg -> Alcotest.failf "corrupt stream: %s" msg
      | `Need_more ->
          let n = Unix.read fd chunk 0 (Bytes.length chunk) in
          if n = 0 then Alcotest.fail "server closed early";
          Buffer.add_subbytes buf chunk 0 n;
          read_frames ()
    end
  and consume s consumed =
    let rest = String.sub s consumed (String.length s - consumed) in
    Buffer.clear buf;
    Buffer.add_string buf rest;
    read_frames ()
  in
  read_frames ();
  Unix.close fd;
  Alcotest.(check int) "every request answered" flood (!reports + !overloaded);
  if !overloaded = 0 then Alcotest.fail "flood never saw backpressure";
  if !reports = 0 then Alcotest.fail "flood starved every query";
  (match Client.with_client ~socket_path (fun c -> Client.request c P.Shutdown) with
  | Ok P.Shutdown_ack -> ()
  | _ -> Alcotest.fail "shutdown");
  Alcotest.(check int) "clean exit" 0 (wait_exit pid)

let test_socket_garbage_stream () =
  let socket_path = temp_socket () in
  let pid = fork_server ~socket_path Core.default_config in
  (* Wait for the daemon, then talk garbage on a raw socket: the server
     must answer with a framing error and close only that connection. *)
  (match Client.with_client ~socket_path (fun c -> Client.request c P.Ping) with
  | Ok P.Pong -> ()
  | _ -> Alcotest.fail "ping before garbage");
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  ignore (Unix.write_substring fd "XXXXXXXXXXXX" 0 12 : int);
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec read_until_eof () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      read_until_eof ()
    end
  in
  read_until_eof ();
  Unix.close fd;
  let s = Buffer.contents buf in
  (match P.decode ~buf:s ~pos:0 ~len:(String.length s) with
  | `Frame (P.Response (P.Error_resp { code = P.Bad_request; _ }), _) -> ()
  | _ -> Alcotest.fail "expected a bad-request framing error");
  (* The daemon survived: a fresh connection still works. *)
  (match Client.with_client ~socket_path (fun c -> Client.request c P.Ping) with
  | Ok P.Pong -> ()
  | _ -> Alcotest.fail "ping after garbage");
  (match Client.with_client ~socket_path (fun c -> Client.request c P.Shutdown) with
  | Ok P.Shutdown_ack -> ()
  | _ -> Alcotest.fail "shutdown");
  Alcotest.(check int) "clean exit" 0 (wait_exit pid)

let test_socket_malformed_query () =
  let socket_path = temp_socket () in
  let pid = fork_server ~socket_path Core.default_config in
  (* One connection: a malformed query must come back as a clean EBPS
     error frame, and the same connection must then serve a valid query —
     the diagnostic is an answer, not a disconnect. *)
  let result =
    Client.with_client ~tenant:"q" ~socket_path (fun c ->
        let bad = Client.request c (query_request ~expr:"count where pc >" ()) in
        let good = Client.request c (query_request ()) in
        Ok (bad, good))
  in
  (match result with
  | Error msg -> Alcotest.fail msg
  | Ok (bad, good) ->
      (match bad with
      | Ok (P.Error_resp { code = P.Bad_request; message }) ->
          if not (contains_sub message "query:1:17") then
            Alcotest.failf "diagnostic lacks caret position: %s" message
      | Ok r ->
          Alcotest.failf "unexpected %s"
            (Format.asprintf "%a" P.pp_frame (P.Response r))
      | Error msg -> Alcotest.failf "connection died on bad query: %s" msg);
      match good with
      | Ok (P.Report _) -> ()
      | Ok r ->
          Alcotest.failf "unexpected %s"
            (Format.asprintf "%a" P.pp_frame (P.Response r))
      | Error msg -> Alcotest.failf "valid query after bad one: %s" msg);
  (match Client.with_client ~socket_path (fun c -> Client.request c P.Shutdown) with
  | Ok P.Shutdown_ack -> ()
  | _ -> Alcotest.fail "shutdown");
  Alcotest.(check int) "clean exit" 0 (wait_exit pid)

let test_socket_read_fault_and_signal () =
  let socket_path = temp_socket () in
  let pid =
    fork_server ~configure_faults:"serve.read:always:bitflip" ~socket_path
      Core.default_config
  in
  (* Every inbound chunk gets one bit flipped, so the CRC rejects every
     request — the client must fail cleanly, never hang, and the daemon
     must survive to shut down gracefully on SIGTERM. *)
  (match Client.connect ~socket_path () with
  | Ok c ->
      Client.close c;
      Alcotest.fail "hello should not survive a bit-flipped read"
  | Error _ -> ());
  Unix.kill pid Sys.sigterm;
  Alcotest.(check int) "SIGTERM drains cleanly" 0 (wait_exit pid)

let test_stale_socket_recovery () =
  (* A socket file with no listener behind it — the footprint of a
     crashed daemon — must be reclaimed, not refused. *)
  let socket_path = temp_socket () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket_path);
  Unix.close fd (* bound but never listening: connect will be refused *);
  let pid = fork_server ~socket_path Core.default_config in
  (match Client.with_client ~socket_path (fun c -> Client.request c P.Ping) with
  | Ok P.Pong -> ()
  | _ -> Alcotest.fail "daemon did not reclaim the stale socket");
  (match Client.with_client ~socket_path (fun c -> Client.request c P.Shutdown) with
  | Ok P.Shutdown_ack -> ()
  | _ -> Alcotest.fail "shutdown");
  Alcotest.(check int) "clean exit" 0 (wait_exit pid)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest prop_frame_roundtrip;
          QCheck_alcotest.to_alcotest prop_frame_roundtrip_offset;
          QCheck_alcotest.to_alcotest prop_frame_truncation;
          QCheck_alcotest.to_alcotest prop_frame_bitflip;
          Alcotest.test_case "oversized frame rejected" `Quick test_frame_oversized;
          Alcotest.test_case "decode fault point" `Quick test_frame_fault_point;
        ] );
      ( "core",
        [
          Alcotest.test_case "bounded admission overload" `Quick test_overload;
          Alcotest.test_case "round-robin fairness" `Quick test_round_robin_fairness;
          Alcotest.test_case "coalescing" `Quick test_coalescing;
          Alcotest.test_case "drain and refuse" `Quick test_drain_and_refuse;
          Alcotest.test_case "control requests" `Quick test_control_requests;
          Alcotest.test_case "query requests" `Quick test_query_requests;
          Alcotest.test_case "live query" `Quick test_live_query;
        ] );
      ( "store",
        [
          Alcotest.test_case "lru eviction" `Quick test_store_lru;
          Alcotest.test_case "disk tier" `Quick test_store_disk_tier;
        ] );
      ( "socket",
        [
          Alcotest.test_case "bit-identity, all workloads" `Slow test_socket_bit_identity;
          Alcotest.test_case "flood gets backpressure" `Quick test_socket_flood_overload;
          Alcotest.test_case "garbage stream" `Quick test_socket_garbage_stream;
          Alcotest.test_case "malformed query stays connected" `Quick
            test_socket_malformed_query;
          Alcotest.test_case "read fault + SIGTERM" `Quick test_socket_read_fault_and_signal;
          Alcotest.test_case "stale socket recovery" `Quick test_stale_socket_recovery;
        ] );
    ]
