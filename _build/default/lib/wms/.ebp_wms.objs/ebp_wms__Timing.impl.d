lib/wms/timing.ml: Ebp_machine Format
