bin/ebp.mli:
