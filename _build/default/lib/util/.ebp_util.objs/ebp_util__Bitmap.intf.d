lib/util/bitmap.mli: Format
