type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?align ~header ~rows () =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n > ncols then invalid_arg "Text_table.render: row wider than header";
    row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    let base = match align with None -> [ Left; Right ] | Some a -> a in
    let base = if base = [] then [ Left ] else base in
    let last = List.nth base (List.length base - 1) in
    List.init ncols (fun i ->
        if i < List.length base then List.nth base i else last)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let line cells =
    String.concat "  "
      (List.map2 (fun (a, w) c -> pad a w c) (List.combine aligns widths) cells)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line header :: sep :: List.map line rows) ^ "\n"
