lib/workloads/mc_puzzle.ml:
