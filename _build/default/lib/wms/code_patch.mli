(** CodePatch (CP) strategy: inline checks before stores (§3.3, Figure 6).

    {!instrument} rewrites the program so the target of every explicit
    store is checked: the store at index [i] becomes a jump to an appended
    stub — [Chk] of the effective address, the relocated store, and a jump
    back to [i+1]. No existing instruction index moves and no register is
    clobbered, so patching is transparent to the rest of the code. This is
    the ISA-level equivalent of the paper's subroutine call with the target
    address in a spare register.

    Per write the only modeled cost is [SoftwareLookup] (~2.75 µs) plus the
    stub's few machine cycles — the uniform, low-variance tax that makes CP
    the paper's recommended design. Install/remove charge [SoftwareUpdate].

    {!expansion} reports static code growth; the paper estimates 12–15% on
    SPARC from the write-instruction fraction. *)

type patched

val instrument : Ebp_isa.Program.t -> patched
(** The input must be resolved. *)

val program : patched -> Ebp_isa.Program.t
val patched_stores : patched -> int

val expansion : patched -> float
(** Instrumented size / original size, e.g. [1.13] for 13% growth. *)

val expansion_of_program : Ebp_isa.Program.t -> float
(** Static estimate without building the patched program. *)

type t

val attach :
  ?timing:Timing.t ->
  patched ->
  Ebp_machine.Machine.t ->
  notify:(Wms.notification -> unit) ->
  t
(** The machine must have been created from [program patched]. Takes over
    the machine's [Chk] handler. *)

val strategy : t -> Wms.strategy
val stats : t -> Wms.stats
