(* Comparing the four WMS strategies on the same debugging task, live.

   The same program and the same data breakpoint run under NativeHardware,
   VirtualMemory, TrapPatch, and CodePatch. All four must report identical
   hits (they implement the same service); what differs is cost:

   - the machine's cycle counter shows each strategy's overhead (the
     handlers charge the paper's Table 2 timing values at 40 MHz);
   - NativeHardware additionally demonstrates the paper's capacity
     problem: watching every element of a linked structure exhausts its
     four monitor registers immediately (§3.1, §9).

   Run with: dune exec examples/strategy_comparison.exe *)

let program =
  {|
int log_sum;
int steps;

// A hash table the debugging session watches: updates are frequent, so
// strategy overhead differences show up clearly.
int buckets[64];

void bump(int key) {
  int h;
  h = (key * 2654435761) % 64;
  if (h < 0) {
    h = h + 64;
  }
  buckets[h] = buckets[h] + 1;
}

int main() {
  int i;
  srand(5);
  for (i = 0; i < 2000; i = i + 1) {
    bump(rand(100000));
    steps = steps + 1;
    log_sum = log_sum + i;
  }
  print_int(steps);
  return 0;
}
|}

let compiled =
  match Ebp_lang.Compiler.compile program with
  | Ok c -> c
  | Error msg -> failwith ("compile error: " ^ msg)

(* Baseline run with no strategy attached. *)
let base_cycles =
  let loader = Ebp_runtime.Loader.load compiled in
  let r = Ebp_runtime.Loader.run loader in
  r.Ebp_runtime.Loader.cycles

let run_with kind =
  let dbg = Ebp_core.Debugger.load ~strategy:kind compiled in
  (match Ebp_core.Debugger.watch_global dbg "buckets" with
  | Ok () -> ()
  | Error msg -> failwith msg);
  let _result = Ebp_core.Debugger.run dbg in
  (kind, Ebp_core.Debugger.cycles dbg, List.length (Ebp_core.Debugger.hits dbg))

let () =
  Printf.printf "baseline (no monitoring): %d cycles (%.2f ms at 40 MHz)\n\n"
    base_cycles
    (Ebp_machine.Cost_model.ms_of_cycles base_cycles);
  let results =
    List.map run_with
      [ Ebp_core.Debugger.Native_hardware; Ebp_core.Debugger.Virtual_memory;
        Ebp_core.Debugger.Trap_patch; Ebp_core.Debugger.Code_patch ]
  in
  Printf.printf "%-16s %12s %10s %8s\n" "strategy" "cycles" "overhead" "hits";
  List.iter
    (fun (kind, cycles, hits) ->
      Printf.printf "%-16s %12d %9.1fx %8d\n"
        (Ebp_core.Debugger.strategy_name kind)
        cycles
        (float_of_int cycles /. float_of_int base_cycles)
        hits)
    results;
  (match results with
  | (_, _, h0) :: rest when List.for_all (fun (_, _, h) -> h = h0) rest ->
      Printf.printf "\nall strategies agree: %d hits each\n" h0
  | _ -> print_endline "\nWARNING: strategies disagree on hit counts!");

  (* The capacity cliff: watch each of the first 8 heap nodes of a list.
     NativeHardware runs out of monitor registers after 4. *)
  print_endline "\n--- NativeHardware capacity limit (4 monitor registers) ---";
  let list_program =
    {|
int main() {
  int** head;
  int** node;
  int* v;
  int i;
  head = 0;
  for (i = 0; i < 8; i = i + 1) {
    node = malloc(12);
    v = node;
    v[0] = i;
    node[1] = head;
    head = node;
  }
  return 0;
}
|}
  in
  List.iter
    (fun kind ->
      let dbg =
        match Ebp_core.Debugger.load_source ~strategy:kind list_program with
        | Ok d -> d
        | Error msg -> failwith msg
      in
      for nth = 1 to 8 do
        Ebp_core.Debugger.watch_alloc dbg ~site:"main" ~nth
      done;
      let _ = Ebp_core.Debugger.run dbg in
      Printf.printf "%-16s watching 8 list nodes: %d arming failures\n"
        (Ebp_core.Debugger.strategy_name kind)
        (List.length (Ebp_core.Debugger.errors dbg)))
    [ Ebp_core.Debugger.Native_hardware; Ebp_core.Debugger.Code_patch ]
