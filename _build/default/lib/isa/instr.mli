(** Instruction set of the simulated machine.

    A small load/store RISC in the spirit of the paper's SPARC target. The
    properties the experiment depends on are:

    - store instructions ({!Sw}, {!Sb}) are syntactically identifiable, so
      instrumentation passes can find and rewrite every write instruction;
    - {!Trap} transfers control to a user-registered trap handler, the
      mechanism behind the TrapPatch strategy;
    - {!Chk} is the inline monitor check inserted by the CodePatch strategy
      (the ISA-level equivalent of the paper's two-instruction call stub);
    - {!Enter}/{!Leave} are zero-cost function-boundary markers emitted by
      the compiler, standing in for the paper's assembly post-processing
      hooks that install/remove monitors for automatic variables.

    Branch and jump targets are symbolic {!Label}s until {!Program.resolve}
    turns them into absolute instruction indices. *)

type target = Label of string | Abs of int

type alu_op =
  | Add
  | Sub
  | Mul
  | Div  (** traps on division by zero *)
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt  (** set if less-than, signed *)
  | Sle
  | Seq
  | Sne

type cond = Eq | Ne | Lt | Ge | Gt | Le

type t =
  | Nop
  | Halt  (** stop the machine; exit code in [v0] *)
  | Li of Reg.t * int  (** [rd <- imm] *)
  | Mv of Reg.t * Reg.t  (** [rd <- rs] *)
  | Alu of alu_op * Reg.t * Reg.t * Reg.t  (** [rd <- rs1 op rs2] *)
  | Alui of alu_op * Reg.t * Reg.t * int  (** [rd <- rs1 op imm] *)
  | Lw of Reg.t * Reg.t * int  (** [rd <- word mem\[rs + off\]] *)
  | Lb of Reg.t * Reg.t * int  (** [rd <- byte mem\[rs + off\]], zero-extended *)
  | Sw of Reg.t * Reg.t * int  (** [word mem\[rs + off\] <- rd] — a write instruction *)
  | Sb of Reg.t * Reg.t * int  (** [byte mem\[rs + off\] <- rd] — a write instruction *)
  | Br of cond * Reg.t * Reg.t * target  (** branch when [rs1 cond rs2] *)
  | Jmp of target
  | Jal of target  (** [ra <- pc + 1; pc <- target] *)
  | Jalr of Reg.t  (** [ra <- pc + 1; pc <- rs] *)
  | Ret  (** [pc <- ra] *)
  | Syscall of int  (** operating-system service; args in [a0..], result [v0] *)
  | Trap of int  (** software trap to the registered handler *)
  | Chk of { base : Reg.t; off : int; width : int }
      (** monitor check of [mem\[base+off .. base+off+width-1\]] *)
  | Enter of int  (** function-entry marker carrying a function id *)
  | Leave of int  (** function-exit marker *)

val is_store : t -> bool
(** True for {!Sw} and {!Sb}. *)

val store_width : t -> int option
(** [Some 4] for {!Sw}, [Some 1] for {!Sb}, [None] otherwise. *)

val branch_target : t -> target option
(** The control-transfer target of {!Br}, {!Jmp}, {!Jal}, if any. *)

val with_target : t -> target -> t
(** Replace the control-transfer target.
    @raise Invalid_argument when the instruction has no target. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
