examples/heap_corruption.mli:
