(* Lexical tokens of MiniC, the C subset the benchmark workloads are written
   in (see DESIGN.md §2: it stands in for the paper's ANSI C + GCC 1.4). *)

type t =
  | Int_lit of int
  | Ident of string
  | Kw_int
  | Kw_void
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_for
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_static
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Shl
  | Shr
  | Bang
  | And_and
  | Or_or
  | Assign
  | Eq_eq
  | Bang_eq
  | Lt
  | Le
  | Gt
  | Ge
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semi
  | Eof

let to_string = function
  | Int_lit i -> string_of_int i
  | Ident s -> s
  | Kw_int -> "int"
  | Kw_void -> "void"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_while -> "while"
  | Kw_for -> "for"
  | Kw_return -> "return"
  | Kw_break -> "break"
  | Kw_continue -> "continue"
  | Kw_static -> "static"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe -> "|"
  | Caret -> "^"
  | Tilde -> "~"
  | Shl -> "<<"
  | Shr -> ">>"
  | Bang -> "!"
  | And_and -> "&&"
  | Or_or -> "||"
  | Assign -> "="
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Semi -> ";"
  | Eof -> "<eof>"

let equal (a : t) (b : t) = a = b
