lib/core/debugger.ml: Array Ebp_isa Ebp_lang Ebp_machine Ebp_runtime Ebp_util Ebp_wms Hashtbl Int Lazy List Printf Result String
