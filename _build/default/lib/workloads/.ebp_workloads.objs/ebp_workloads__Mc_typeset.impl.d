lib/workloads/mc_typeset.ml:
