lib/wms/interval_map.mli: Ebp_util
