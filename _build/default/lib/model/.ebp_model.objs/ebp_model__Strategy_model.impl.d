lib/model/strategy_model.ml: Ebp_sessions Ebp_wms List Printf
