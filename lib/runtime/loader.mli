(** Program loader and operating-system personality.

    Couples a compiled MiniC program to a {!Ebp_machine.Machine.t}: applies
    global/static initializers (load-time privileged writes, invisible to
    traces), wires the system-call dispatcher ([exit], [print_int],
    [print_char], [malloc], [free], [realloc], [rand], [srand]) to the
    {!Allocator} and a deterministic PRNG, and runs the machine.

    Program output is collected in a buffer so tests can assert on it.
    Runtime errors (bad [free], heap exhaustion on [malloc] is reported as a
    null return instead) stop the machine with a descriptive error. *)

type t

type run_result = {
  status : Ebp_machine.Machine.stop_reason;
  cycles : int;
  instructions : int;
  output : string;
  runtime_error : string option;
      (** set when a system call failed (e.g. bad [free]) *)
}

val load :
  ?seed:int ->
  ?costs:Ebp_machine.Cost_model.t ->
  ?monitor_reg_count:int ->
  ?mem:Ebp_machine.Memory.t ->
  Ebp_lang.Compiler.output ->
  t
(** [seed] (default 42) seeds the [rand] builtin. *)

val machine : t -> Ebp_machine.Machine.t
val allocator : t -> Allocator.t
val debug : t -> Ebp_lang.Debug_info.t
val output : t -> string
(** Output produced so far. *)

val run : ?fuel:int -> t -> run_result
(** Resumable: returning {!Ebp_machine.Machine.stop_reason}
    [Out_of_fuel] leaves the machine state intact, and a later [run]
    continues from it. *)

(** {2 Snapshots}

    Checkpoint support: machine execution state, allocator, PRNG, output
    buffer, and error flag — everything a resumed run depends on except
    memory, which the checkpointing layer captures as dirty-page deltas
    (see {!Ebp_machine.Memory.take_dirty}). *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val run_source : ?seed:int -> ?fuel:int -> string -> (run_result, string) result
(** Convenience: compile MiniC source, load, and run it. *)
