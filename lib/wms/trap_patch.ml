module Interval = Ebp_util.Interval
module Instr = Ebp_isa.Instr
module Program = Ebp_isa.Program
module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory

type patched = {
  prog : Program.t;
  originals : (int, Instr.t) Hashtbl.t;  (* trap code (= index) -> store *)
}

let instrument prog =
  if not (Program.is_resolved prog) then
    invalid_arg "Trap_patch.instrument: program has unresolved labels";
  let originals = Hashtbl.create 64 in
  let prog =
    List.fold_left
      (fun prog (idx, instr) ->
        Hashtbl.add originals idx instr;
        Program.set prog idx (Instr.Trap idx))
      prog (Program.stores prog)
  in
  { prog; originals }

let program p = p.prog
let patched_stores p = Hashtbl.length p.originals

type t = {
  machine : Machine.t;
  timing : Timing.t;
  map : Monitor_map.t;
  stats : Wms.stats;
  notify : Wms.notification -> unit;
}

let emulate_store machine instr =
  let mem = Machine.memory machine in
  match instr with
  | Instr.Sw (rd, rs, off) ->
      let addr = Machine.get_reg machine rs + off in
      Memory.privileged_store_word mem addr (Machine.get_reg machine rd);
      (addr, 4)
  | Instr.Sb (rd, rs, off) ->
      let addr = Machine.get_reg machine rs + off in
      Memory.privileged_store_byte mem addr (Machine.get_reg machine rd land 0xff);
      (addr, 1)
  | _ -> invalid_arg "Trap_patch: side table holds a non-store instruction"

let on_trap t patched machine ~code ~trap_pc =
  match Hashtbl.find_opt patched.originals code with
  | None ->
      (* Not one of ours: a genuine program trap would go here; MiniC
         programs never execute one. *)
      ()
  | Some store ->
      Machine.charge machine
        (Timing.cycles
           (t.timing.Timing.tp_fault_handler_us +. t.timing.Timing.software_lookup_us));
      t.stats.Wms.lookups <- t.stats.Wms.lookups + 1;
      let addr, width = emulate_store machine store in
      let range = Interval.of_base_size ~base:addr ~size:width in
      if Monitor_map.overlaps t.map range then begin
        t.stats.Wms.hits <- t.stats.Wms.hits + 1;
        t.notify { Wms.write = range; pc = trap_pc }
      end

let attach ?(timing = Timing.sparcstation2) patched machine ~notify =
  let t =
    { machine; timing; map = Monitor_map.create (); stats = Wms.fresh_stats ();
      notify }
  in
  Machine.set_trap_handler machine (Some (on_trap t patched));
  t

let install t range =
  Machine.charge t.machine (Timing.cycles t.timing.Timing.software_update_us);
  Monitor_map.install t.map range;
  t.stats.Wms.installs <- t.stats.Wms.installs + 1;
  Ok ()

let remove t range =
  Machine.charge t.machine (Timing.cycles t.timing.Timing.software_update_us);
  Monitor_map.remove t.map range;
  t.stats.Wms.removes <- t.stats.Wms.removes + 1;
  Ok ()

let strategy t =
  {
    Wms.name = "TrapPatch";
    install = install t;
    remove = remove t;
    active_monitors = (fun () -> Monitor_map.monitored_words t.map);
    extras = (fun () -> []);
  }

let stats t = t.stats
