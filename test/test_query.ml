(* The query subsystem: parser round-trips and diagnostics, the
   Pos_set algebra against naive list sets, and the central guarantee —
   the compiled (index) engine agrees with the streaming scan oracle on
   every query, over both synthetic adversarial traces (wide writes,
   word-boundary spans, reinstalls, address reuse) and a real recorded
   MiniC program. *)

module Interval = Ebp_util.Interval
module Object_desc = Ebp_trace.Object_desc
module Trace = Ebp_trace.Trace
module Write_index = Ebp_trace.Write_index
module Session = Ebp_sessions.Session
module Ast = Ebp_query.Ast
module Parser = Ebp_query.Parser
module Query = Ebp_query.Query
module Qresult = Ebp_query.Qresult

let iv lo hi = Interval.make ~lo ~hi
let page_sizes = Ebp_sessions.Replay.default_page_sizes

(* --- parser: acceptance and canonical round-trip --- *)

let parse_ok s =
  match Parser.parse s with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse %S: %s" s (Parser.error_line s e)

let test_parse_canonical () =
  (* Canonical strings reparse to themselves via Ast.to_string. *)
  List.iter
    (fun s -> Alcotest.(check string) s s (Ast.to_string (parse_ok s)))
    [
      "count";
      "count distinct pc";
      "count distinct word";
      "count where pc = 5";
      "count where pc != 5";
      "count where pc in [2,17]";
      "count where addr in [4096,8191]";
      "count where time in [0,100]";
      "count where live(local:main.t)";
      "count where live(locals:f)";
      "count where live(global:g)";
      "count where live(heap:alloc_vec#3)";
      "count where live(heapfn:main)";
      "count where pc = 1 and addr in [0,15]";
      "count where pc = 1 or pc = 2 or pc = 3";
      "count where not pc = 1 and not (pc = 2 or time in [9,10])";
      "count where live(global:g) and time in [100,200] group by pc top 5";
      "count where addr in [0,1023] group by object";
      "count where pc >= 3 bucket by 1000";
    ]

let test_parse_sugar () =
  (* Non-canonical spellings parse to the same AST. *)
  let same a b =
    Alcotest.(check bool)
      (a ^ " = " ^ b)
      true
      (Ast.equal (parse_ok a) (parse_ok b))
  in
  same "count where pc = 0x10" "count where pc = 16";
  same "count where (pc = 1)" "count where pc = 1";
  same "count where live( local:main.t )" "count where live(local:main.t)";
  same "count  where\tpc=1 and(pc=2)" "count where pc = 1 and pc = 2"

let test_parse_errors () =
  (* Every syntax/type error is a one-line message with a caret column. *)
  let err s =
    match Parser.parse s with
    | Ok _ -> Alcotest.failf "expected %S to be rejected" s
    | Error e -> Parser.error_line s e
  in
  let check s expect = Alcotest.(check string) s expect (err s) in
  check "count where pc >"
    "query:1:17: expected an integer after the comparison, got 'end of query'";
  check "count where pc in [5,2]" "query:1:19: empty pc range: 5 > 2";
  check "count where live(bogus)"
    "query:1:18: bad session descriptor \"bogus\" (expected local:FUNC.VAR, \
     locals:FUNC, global:VAR, heap:SITE#N, or heapfn:FUNC)";
  check "count where live(global:g" "query:1:17: unterminated live(...): missing ')'";
  check "count distinct pc group by pc"
    "query:1:19: count distinct cannot be combined with group by";
  check "count group by pc bucket by 10"
    "query:1:19: group by and bucket by cannot be combined";
  check "count where pc = 1 top 3" "query:1:20: unexpected 'top' after the query";
  check "frobnicate" "query:1:1: expected 'count', got 'frobnicate'";
  check "count where pc @ 3" "query:1:16: unexpected character '@'"

let test_error_caret () =
  match Parser.parse "count where pc in [5,2]" with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error e ->
      Alcotest.(check string) "caret"
        "  count where pc in [5,2]\n                    ^"
        (Parser.error_caret "count where pc in [5,2]" e)

(* --- Pos_set algebra vs naive list sets --- *)

let sorted_set_gen =
  QCheck2.Gen.(
    map
      (fun l -> Array.of_list (List.sort_uniq Int.compare l))
      (list_size (int_range 0 40) (int_range 0 60)))

let prop_pos_set_algebra =
  QCheck2.Test.make ~name:"Pos_set agrees with naive list sets" ~count:500
    QCheck2.Gen.(triple sorted_set_gen sorted_set_gen sorted_set_gen)
    (fun (a, b, c) ->
      let module P = Write_index.Pos_set in
      let l x = Array.to_list x in
      let naive_union xs = List.sort_uniq Int.compare (List.concat_map l xs) in
      let naive_inter x y = List.filter (fun v -> List.mem v (l y)) (l x) in
      let naive_diff x y = List.filter (fun v -> not (List.mem v (l y))) (l x) in
      l (P.union [ a; b; c ]) = naive_union [ a; b; c ]
      && l (P.inter a b) = naive_inter a b
      && l (P.diff a b) = naive_diff a b
      && l (P.within a ~lo:10 ~hi:40)
         = List.filter (fun v -> v >= 10 && v <= 40) (l a))

(* --- random traces (the adversarial universe of test_indexed.ml) --- *)

let objects =
  [|
    (Object_desc.Global { var = "a" }, iv 0x1000 0x1003);
    (Object_desc.Global { var = "b" }, iv 0x13fc 0x1407);
    (Object_desc.Global { var = "wide" }, iv 0x2000 0x202b);
    (Object_desc.Heap { context = [ "f"; "main" ]; seq = 1 }, iv 0x3000 0x300b);
    (Object_desc.Local { func = "f"; var = "x"; inst = 1 }, iv 0x8000 0x8003);
    (Object_desc.Local { func = "f"; var = "x"; inst = 2 }, iv 0x8000 0x8003);
    (Object_desc.Local { func = "f"; var = "y"; inst = 1 }, iv 0x8004 0x8007);
    (Object_desc.Global { var = "far" }, iv 0x1_0000_1000 0x1_0000_100b);
  |]

let trace_gen =
  let open QCheck2.Gen in
  let* ops =
    list_size (int_range 1 120)
      (triple (int_range 0 5) (int_range 0 7) (int_range 0 40))
  in
  return
    (let b = Trace.Builder.create () in
     List.iter
       (fun (kind, idx, jitter) ->
         let idx = idx mod Array.length objects in
         let obj, range = objects.(idx) in
         match kind with
         | 0 | 1 -> Trace.Builder.add_install b obj range
         | 2 -> Trace.Builder.add_remove b obj range
         | 3 ->
             let lo = (Interval.lo range + (jitter * 412)) land lnot 3 in
             Trace.Builder.add_write b (iv lo (lo + 3)) ~pc:idx
         | 4 ->
             let lo = (Interval.lo range + (jitter * 512)) land lnot 3 in
             Trace.Builder.add_write b (iv lo (lo + 19 + (4 * jitter))) ~pc:idx
         | _ ->
             let lo = Interval.lo range + jitter in
             Trace.Builder.add_write b (iv lo (lo + 2)) ~pc:idx)
       ops;
     Trace.Builder.finish b)

(* --- random well-typed queries --- *)

let session_gen =
  QCheck2.Gen.oneofl
    [
      Session.One_global_static { var = "a" };
      Session.One_global_static { var = "b" };
      Session.One_global_static { var = "wide" };
      Session.One_heap { site = "f"; seq = 1 };
      Session.One_local_auto { func = "f"; var = "x" };
      Session.All_local_in_func { func = "f" };
      Session.All_heap_in_func { func = "main" };
      Session.One_global_static { var = "absent" };
    ]

let pred_gen =
  let open QCheck2.Gen in
  let atom =
    oneof
      [
        (let* c = oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]
         and* n = int_range 0 9 in
         return (Ast.Pc_cmp (c, n)));
        (let* a = int_range 0 6 and* d = int_range 0 4 in
         return (Ast.Pc_in (a, a + d)));
        (let* a = int_range 0 0x11000 and* d = int_range 0 0x3000 in
         return (Ast.Addr_in (a, a + d)));
        (let* a = int_range 0 130 and* d = int_range 0 60 in
         return (Ast.Time_in (a, a + d)));
        map (fun s -> Ast.Live s) session_gen;
      ]
  in
  sized_size (int_range 0 4) @@ fix (fun self n ->
      if n = 0 then atom
      else
        frequency
          [
            (2, atom);
            ( 2,
              let* a = self (n / 2) and* b = self (n / 2) in
              return (Ast.And (a, b)) );
            ( 2,
              let* a = self (n / 2) and* b = self (n / 2) in
              return (Ast.Or (a, b)) );
            (1, map (fun p -> Ast.Not p) (self (n - 1)));
          ])

let query_gen =
  let open QCheck2.Gen in
  let* pred = frequency [ (5, pred_gen); (1, return Ast.All) ] in
  let* shape = int_range 0 5 in
  match shape with
  | 0 -> return { Ast.agg = Ast.Count; pred; group = None; top = None; bucket = None }
  | 1 ->
      let* f = oneofl [ Ast.D_pc; Ast.D_word ] in
      return { Ast.agg = Ast.Count_distinct f; pred; group = None; top = None; bucket = None }
  | 2 | 3 ->
      let* key = oneofl [ Ast.G_object; Ast.G_pc ] in
      let* top = opt (int_range 1 5) in
      return { Ast.agg = Ast.Count; pred; group = Some key; top; bucket = None }
  | _ ->
      let* w = int_range 1 50 in
      return { Ast.agg = Ast.Count; pred; group = None; top = None; bucket = Some w }

(* --- round-trip: parse (to_string q) = q --- *)

let prop_print_parse_round_trip =
  QCheck2.Test.make ~name:"parse (to_string q) = q" ~count:1000 query_gen
    (fun q ->
      match Parser.parse (Ast.to_string q) with
      | Ok q' -> Ast.equal q q'
      | Error e ->
          QCheck2.Test.fail_reportf "rendered query %S rejected: %s"
            (Ast.to_string q)
            (Parser.error_line (Ast.to_string q) e))

(* --- the tentpole property: compiled engine = scan oracle --- *)

let prop_engines_agree =
  QCheck2.Test.make ~name:"compiled engine = scan oracle" ~count:400
    QCheck2.Gen.(pair trace_gen query_gen)
    (fun (trace, q) ->
      let index = Write_index.build ~page_sizes trace in
      match Query.check_engines ~index trace q with
      | Ok _ -> true
      | Error msg -> QCheck2.Test.fail_report msg)

(* Shrink candidates stay well-typed (parseable after rendering), so the
   fuzzer's minimal reproducers are always runnable. *)
let prop_shrink_candidates_well_typed =
  QCheck2.Test.make ~name:"shrink candidates reparse" ~count:300 query_gen
    (fun q ->
      List.for_all
        (fun q' ->
          match Parser.parse (Ast.to_string q') with
          | Ok q'' -> Ast.equal q' q''
          | Error _ -> false)
        (Ast.shrink_candidates q))

(* --- a real recorded program --- *)

let tiny_source =
  {|
int g;
int h[4];
int main() {
  int i;
  int* p;
  p = malloc(8);
  for (i = 0; i < 10; i = i + 1) {
    g = g + i;
    h[i & 3] = i;
    p[i & 1] = i;
  }
  free(p);
  print_int(g);
  return 0;
}
|}

let record_tiny () =
  match Ebp_trace.Recorder.record_source tiny_source with
  | Ok (_, trace, _) -> trace
  | Error msg -> Alcotest.failf "record failed: %s" msg

let test_real_program () =
  let trace = record_tiny () in
  let index = Write_index.build ~page_sizes trace in
  let run s =
    let q = parse_ok s in
    match Query.check_engines ~index trace q with
    | Ok { raw; _ } -> raw
    | Error msg -> Alcotest.fail msg
  in
  (* Engine agreement on every shape, plus a few pinned facts. *)
  let queries =
    [
      "count";
      "count distinct pc";
      "count distinct word";
      "count where live(global:g)";
      "count where live(local:main.i)";
      "count where live(locals:main)";
      "count where live(heapfn:main)";
      "count where not live(global:g)";
      "count where live(global:g) and time in [0,50]";
      "count group by object top 3";
      "count group by pc";
      "count bucket by 16";
    ]
  in
  List.iter (fun s -> ignore (run s)) queries;
  (* g is written 10 times in the loop; the engines agree and the count
     is exactly the writes landing in g's live window. *)
  (match run "count where live(global:g)" with
  | Qresult.Count n -> Alcotest.(check int) "writes to g" 10 n
  | _ -> Alcotest.fail "expected a count");
  (* Rendered output is built from the shared path: both formats render
     without raising and the table mentions the key column. *)
  let q = parse_ok "count group by object top 2" in
  let { Query.raw; _ } = Query.run ~engine:Query.Indexed ~index trace q in
  let table = Query.render ~format:Query.Table trace q raw in
  Alcotest.(check bool) "table has object column" true
    (String.length table > 0
    && String.sub table 0 6 = "object");
  let nd = Query.render ~format:Query.Ndjson trace q raw in
  Alcotest.(check bool) "ndjson parses" true
    (List.for_all
       (fun line ->
         match Ebp_obs.Json.of_string line with Ok _ -> true | Error _ -> false)
       (String.split_on_char '\n' (String.trim nd)))

(* Auto engine selection returns the same raw result as both overrides,
   whatever the planner picks. *)
let prop_auto_matches_overrides =
  QCheck2.Test.make ~name:"auto = indexed = scan" ~count:100
    QCheck2.Gen.(pair trace_gen query_gen)
    (fun (trace, q) ->
      let index = Write_index.build ~page_sizes trace in
      let auto = (Query.run ~engine:Query.Auto ~index trace q).raw in
      let indexed = (Query.run ~engine:Query.Indexed ~index trace q).raw in
      let scan = (Query.run ~engine:Query.Scan trace q).raw in
      Qresult.equal auto indexed && Qresult.equal indexed scan)

let qtest = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "query"
    [
      ( "parser",
        [
          Alcotest.test_case "canonical round-trip" `Quick test_parse_canonical;
          Alcotest.test_case "sugar" `Quick test_parse_sugar;
          Alcotest.test_case "diagnostics" `Quick test_parse_errors;
          Alcotest.test_case "caret" `Quick test_error_caret;
          qtest prop_print_parse_round_trip;
          qtest prop_shrink_candidates_well_typed;
        ] );
      ("pos-set", [ qtest prop_pos_set_algebra ]);
      ( "engines",
        [
          qtest prop_engines_agree;
          qtest prop_auto_matches_overrides;
          Alcotest.test_case "real program" `Quick test_real_program;
        ] );
    ]
