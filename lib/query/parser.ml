(* Recursive-descent parser for the query language, in lib/lang's style.
   Every syntax or type error is an {!error} carrying the byte offset of
   the offending token, rendered as a one-line [query:LINE:COL: message]
   plus a caret line — the diagnostics test/cram/query.t pins. *)

type error = { message : string; pos : int }

exception Fail of string * int

type state = { toks : Token.spanned array; mutable pos : int }

let cur st = st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail_at at msg = raise (Fail (msg, at))
let fail st msg = fail_at (cur st).Token.pos msg

let expect st token what =
  let t = cur st in
  if t.Token.token = token then advance st
  else fail st (Printf.sprintf "expected %s, got '%s'" what (Token.to_string t.token))

(* Keywords are contextual [Ident]s. *)
let accept_kw st kw =
  match (cur st).Token.token with
  | Token.Ident s when String.equal s kw ->
      advance st;
      true
  | _ -> false

let expect_kw st kw =
  if not (accept_kw st kw) then
    fail st
      (Printf.sprintf "expected '%s', got '%s'" kw (Token.to_string (cur st).token))

let expect_int st what =
  match (cur st).Token.token with
  | Token.Int v ->
      advance st;
      v
  | t -> fail st (Printf.sprintf "expected %s, got '%s'" what (Token.to_string t))

(* [ INT , INT ] — inclusive, non-empty. *)
let range st what =
  let open_pos = (cur st).Token.pos in
  expect st Token.Lbracket (Printf.sprintf "'[' to open the %s range" what);
  let a = expect_int st "an integer" in
  expect st Token.Comma "','";
  let b = expect_int st "an integer" in
  expect st Token.Rbracket "']'";
  if a > b then
    fail_at open_pos (Printf.sprintf "empty %s range: %d > %d" what a b);
  (a, b)

(* Inverse of Ast.spec_of_session; [at] points at the descriptor. *)
let session_of_spec ~at spec : Ebp_sessions.Session.t =
  let bad () =
    fail_at at
      (Printf.sprintf
         "bad session descriptor %S (expected local:FUNC.VAR, locals:FUNC, \
          global:VAR, heap:SITE#N, or heapfn:FUNC)"
         spec)
  in
  let split_once sep s =
    match String.index_opt s sep with
    | None -> None
    | Some i ->
        Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let nonempty s = if String.length s = 0 then bad () else s in
  match split_once ':' spec with
  | Some ("local", rest) -> (
      match split_once '.' rest with
      | Some (func, var) ->
          One_local_auto { func = nonempty func; var = nonempty var }
      | None -> bad ())
  | Some ("locals", func) -> All_local_in_func { func = nonempty func }
  | Some ("global", var) -> One_global_static { var = nonempty var }
  | Some ("heap", rest) -> (
      match split_once '#' rest with
      | Some (site, seq) -> (
          match int_of_string_opt seq with
          | Some seq when seq >= 0 -> One_heap { site = nonempty site; seq }
          | _ -> bad ())
      | None -> bad ())
  | Some ("heapfn", func) -> All_heap_in_func { func = nonempty func }
  | Some _ | None -> bad ()

let cmp_op st =
  match (cur st).Token.token with
  | Token.Eq -> advance st; Some Ast.Eq
  | Token.Ne -> advance st; Some Ast.Ne
  | Token.Lt -> advance st; Some Ast.Lt
  | Token.Le -> advance st; Some Ast.Le
  | Token.Gt -> advance st; Some Ast.Gt
  | Token.Ge -> advance st; Some Ast.Ge
  | _ -> None

let rec parse_or st =
  let left = ref (parse_and st) in
  while accept_kw st "or" do
    left := Ast.Or (!left, parse_and st)
  done;
  !left

and parse_and st =
  let left = ref (parse_unary st) in
  while accept_kw st "and" do
    left := Ast.And (!left, parse_unary st)
  done;
  !left

and parse_unary st =
  if accept_kw st "not" then Ast.Not (parse_unary st) else parse_atom st

and parse_atom st =
  match (cur st).Token.token with
  | Token.Lparen ->
      advance st;
      let p = parse_or st in
      expect st Token.Rparen "')'";
      p
  | Token.Ident "all" ->
      advance st;
      Ast.All
  | Token.Ident "pc" ->
      advance st;
      if accept_kw st "in" then
        let a, b = range st "pc" in
        Ast.Pc_in (a, b)
      else (
        match cmp_op st with
        | Some c ->
            let n = expect_int st "an integer after the comparison" in
            Ast.Pc_cmp (c, n)
        | None ->
            fail st
              (Printf.sprintf "expected a comparison or 'in' after 'pc', got '%s'"
                 (Token.to_string (cur st).token)))
  | Token.Ident "addr" ->
      advance st;
      expect_kw st "in";
      let a, b = range st "addr" in
      Ast.Addr_in (a, b)
  | Token.Ident "time" ->
      advance st;
      expect_kw st "in";
      let a, b = range st "time" in
      Ast.Time_in (a, b)
  | Token.Ident "live" ->
      advance st;
      expect st Token.Lparen "'(' after 'live'";
      let spec_tok = cur st in
      let spec =
        match spec_tok.Token.token with
        | Token.Session_spec s ->
            advance st;
            s
        | t ->
            fail st
              (Printf.sprintf "expected a session descriptor, got '%s'"
                 (Token.to_string t))
      in
      expect st Token.Rparen "')'";
      Ast.Live (session_of_spec ~at:spec_tok.Token.pos spec)
  | t ->
      fail st
        (Printf.sprintf "expected a predicate (pc, addr, time, live, not, '('), got '%s'"
           (Token.to_string t))

let parse_query st : Ast.query =
  expect_kw st "count";
  let agg =
    if accept_kw st "distinct" then
      if accept_kw st "pc" then Ast.Count_distinct Ast.D_pc
      else if accept_kw st "word" then Ast.Count_distinct Ast.D_word
      else
        fail st
          (Printf.sprintf "expected 'pc' or 'word' after 'distinct', got '%s'"
             (Token.to_string (cur st).token))
    else Ast.Count
  in
  let pred = if accept_kw st "where" then parse_or st else Ast.All in
  let group_pos = (cur st).Token.pos in
  let group, top =
    if accept_kw st "group" then begin
      expect_kw st "by";
      let key =
        if accept_kw st "object" then Ast.G_object
        else if accept_kw st "pc" then Ast.G_pc
        else
          fail st
            (Printf.sprintf "expected 'object' or 'pc' after 'group by', got '%s'"
               (Token.to_string (cur st).token))
      in
      let top =
        if accept_kw st "top" then begin
          let at = (cur st).Token.pos in
          let k = expect_int st "a row count after 'top'" in
          if k < 1 then fail_at at "top count must be positive";
          Some k
        end
        else None
      in
      (Some key, top)
    end
    else (None, None)
  in
  let bucket_pos = (cur st).Token.pos in
  let bucket =
    if accept_kw st "bucket" then begin
      expect_kw st "by";
      let at = (cur st).Token.pos in
      let w = expect_int st "a bucket width after 'bucket by'" in
      if w < 1 then fail_at at "bucket width must be positive";
      Some w
    end
    else None
  in
  (match (cur st).Token.token with
  | Token.Eof -> ()
  | t -> fail st (Printf.sprintf "unexpected '%s' after the query" (Token.to_string t)));
  (* Type checks: which clauses compose. *)
  (match (agg, group) with
  | Ast.Count_distinct _, Some _ ->
      fail_at group_pos "count distinct cannot be combined with group by"
  | _ -> ());
  (match (agg, bucket) with
  | Ast.Count_distinct _, Some _ ->
      fail_at bucket_pos "count distinct cannot be combined with bucket by"
  | _ -> ());
  (match (group, bucket) with
  | Some _, Some _ ->
      fail_at bucket_pos "group by and bucket by cannot be combined"
  | _ -> ());
  { agg; pred; group; top; bucket }

let parse source : (Ast.query, error) result =
  match Lexer.tokenize source with
  | Error (message, pos) -> Error { message; pos }
  | Ok toks -> (
      let st = { toks = Array.of_list toks; pos = 0 } in
      try Ok (parse_query st)
      with Fail (message, pos) -> Error { message; pos })

(* --- diagnostics rendering --- *)

(* "query:LINE:COL: message" — the one-line form (also what the EBPS
   error frame carries). *)
let error_line (source : string) (e : error) =
  let line = ref 1 and bol = ref 0 in
  String.iteri
    (fun i c -> if c = '\n' && i < e.pos then begin incr line; bol := i + 1 end)
    source;
  Printf.sprintf "query:%d:%d: %s" !line (e.pos - !bol + 1) e.message

(* The offending source line with a caret under the error position. *)
let error_caret (source : string) (e : error) =
  let n = String.length source in
  let pos = min e.pos n in
  let bol =
    match String.rindex_from_opt source (max 0 (pos - 1)) '\n' with
    | Some i -> i + 1
    | None -> 0
  in
  let eol =
    match String.index_from_opt source bol '\n' with Some i -> i | None -> n
  in
  let text = String.sub source bol (eol - bol) in
  Printf.sprintf "  %s\n  %s^" text (String.make (pos - bol) ' ')
