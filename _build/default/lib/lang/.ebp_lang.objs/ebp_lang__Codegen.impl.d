lib/lang/codegen.ml: Abi Array Ast Debug_info Ebp_isa Layout List Printf Typed
