lib/sessions/counts.ml: Format List Printf
