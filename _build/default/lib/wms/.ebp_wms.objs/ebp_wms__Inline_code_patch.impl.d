lib/wms/inline_code_patch.ml: Ebp_isa Ebp_machine Ebp_util Hashtbl List Timing Wms
