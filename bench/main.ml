(* Benchmark harness: regenerates every table and figure of the paper and
   measures this host's analogues of the Table 2 / Appendix A primitives.

   Layout of the output:

   1. Bechamel micro-benchmarks (host-time analogues):
      - table2/*     SoftwareLookup and SoftwareUpdate on the paper's
                     page-hash-of-bitmaps structure, under the Appendix A.5
                     protocol (100 random monitors in a 2 MiB region,
                     precomputed random probes);
      - appendixA/*  fault-handler round-trips on the simulated machine:
                     VM write fault + emulation, trap dispatch, CodePatch
                     check, NativeHardware monitor-register hit;
      - ablation/*   the monitor-map ablation (DESIGN.md, decision 1):
                     page-hash bitmap vs naive interval list at 10/100/1000
                     active monitors.

   2. The full simulation experiment: Tables 1-4, Figures 7-9, the §8
      overhead breakdown and CodePatch code-expansion estimate.

   3. A live validation run: one debugging scenario executed under all four
      strategies, checking that hit counts agree and showing measured
      cycle overheads. *)

open Bechamel
module Interval = Ebp_util.Interval
module Prng = Ebp_util.Prng
module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory
module Monitor_map = Ebp_wms.Monitor_map
module Interval_map = Ebp_wms.Interval_map

(* --- Appendix A.5 working set: non-overlapping random monitors --- *)

let region_base = 0x100000
let region_size = 2 * 1024 * 1024 (* "a 2 megabyte contiguous memory region" *)

let working_monitor_set ~count ~seed =
  let prng = Prng.create seed in
  (* Partition the region into [count] equal chunks; place one random-size
     monitor in each so they never overlap. *)
  let chunk = region_size / count in
  Array.init count (fun i ->
      let base = region_base + (i * chunk) in
      let size = 4 * Prng.int_in prng ~lo:1 ~hi:(max 2 (chunk / 8)) in
      let off = 4 * Prng.int prng (max 1 ((chunk - size) / 4)) in
      Interval.of_base_size ~base:(base + off) ~size)

let random_probes ~count ~seed =
  let prng = Prng.create seed in
  Array.init count (fun _ ->
      let lo = region_base + (4 * Prng.int prng (region_size / 4)) in
      Interval.of_base_size ~base:lo ~size:4)

(* --- table2 group --- *)

let lookup_test name structure =
  let monitors = working_monitor_set ~count:100 ~seed:1 in
  let probes = random_probes ~count:4096 ~seed:2 in
  let overlaps =
    match structure with
    | `Bitmap ->
        let m = Monitor_map.create () in
        Array.iter (Monitor_map.install m) monitors;
        Monitor_map.overlaps m
    | `Intervals ->
        let m = Interval_map.create () in
        Array.iter (Interval_map.install m) monitors;
        Interval_map.overlaps m
  in
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         let probe = probes.(!i land 4095) in
         incr i;
         ignore (overlaps probe : bool)))

let update_test name structure =
  let monitors = working_monitor_set ~count:100 ~seed:3 in
  let install, remove =
    match structure with
    | `Bitmap ->
        let m = Monitor_map.create () in
        (Monitor_map.install m, fun r -> Monitor_map.remove m r)
    | `Intervals ->
        let m = Interval_map.create () in
        (Interval_map.install m, fun r -> ignore (Interval_map.remove m r))
  in
  let i = ref 0 in
  (* Alternate install/remove of the same monitor: one "update". *)
  Test.make ~name
    (Staged.stage (fun () ->
         let monitor = monitors.(!i mod 100) in
         incr i;
         install monitor;
         remove monitor))

let table2_group =
  Test.make_grouped ~name:"table2"
    [ lookup_test "software_lookup" `Bitmap; update_test "software_update" `Bitmap ]

(* --- appendixA group: fault round-trips on the machine --- *)

let assemble src =
  match Ebp_isa.Asm.parse_resolved src with
  | Ok p -> p
  | Error e -> failwith ("bench assembly: " ^ e)

(* One store to a protected page; the handler emulates it (A.2). *)
let vm_fault_test =
  let p = assemble "  li t0, 7\n  li t1, 1048576\n  sw t0, 0(t1)\n  halt\n" in
  let m = Machine.create p in
  Memory.protect (Machine.memory m) ~page:(Memory.page_of (Machine.memory m) 0x100000)
    Memory.Read_only;
  Machine.set_write_fault_handler m
    (Some
       (fun m ~addr ~width:_ ~value ~pc:_ ->
         Memory.privileged_store_word (Machine.memory m) addr value));
  (* Execute the two li's once so registers are primed. *)
  ignore (Machine.step m);
  ignore (Machine.step m);
  Test.make ~name:"vm_fault_roundtrip"
    (Staged.stage (fun () ->
         Machine.set_pc m 2;
         ignore (Machine.step m)))

(* Trap dispatch + handler return (A.4). *)
let trap_test =
  let p = assemble "  trap 3\n  halt\n" in
  let m = Machine.create p in
  Machine.set_trap_handler m (Some (fun _ ~code:_ ~trap_pc:_ -> ()));
  Test.make ~name:"trap_roundtrip"
    (Staged.stage (fun () ->
         Machine.set_pc m 0;
         ignore (Machine.step m)))

(* CodePatch check against the 100-monitor working set. *)
let chk_test =
  let p = assemble "  li t1, 1048576\n  chk 0(t1), 4\n  halt\n" in
  let m = Machine.create p in
  let map = Monitor_map.create () in
  Array.iter (Monitor_map.install map) (working_monitor_set ~count:100 ~seed:4);
  Machine.set_chk_handler m
    (Some (fun _ ~range ~pc:_ -> ignore (Monitor_map.overlaps map range : bool)));
  ignore (Machine.step m);
  Test.make ~name:"codepatch_check"
    (Staged.stage (fun () ->
         Machine.set_pc m 1;
         ignore (Machine.step m)))

(* NativeHardware: store hitting a monitor register (A.1). *)
let nh_test =
  let p = assemble "  li t0, 7\n  li t1, 1048576\n  sw t0, 0(t1)\n  halt\n" in
  let m = Machine.create p in
  Machine.set_monitor_reg m 0 (Some (Interval.make ~lo:0x100000 ~hi:0x100003));
  Machine.set_monitor_fault_handler m
    (Some (fun _ ~reg:_ ~addr:_ ~width:_ ~pc:_ -> ()));
  ignore (Machine.step m);
  ignore (Machine.step m);
  Test.make ~name:"nh_monitor_hit"
    (Staged.stage (fun () ->
         Machine.set_pc m 2;
         ignore (Machine.step m)))

let appendix_a_group =
  Test.make_grouped ~name:"appendixA" [ vm_fault_test; trap_test; chk_test; nh_test ]

(* --- ablation group: bitmap vs interval list as monitor count grows --- *)

let ablation_group =
  let sizes = [ 10; 100; 1000 ] in
  let mk structure label =
    List.map
      (fun n ->
        let monitors = working_monitor_set ~count:n ~seed:(n + 7) in
        let probes = random_probes ~count:4096 ~seed:(n + 8) in
        let overlaps =
          match structure with
          | `Bitmap ->
              let m = Monitor_map.create () in
              Array.iter (Monitor_map.install m) monitors;
              Monitor_map.overlaps m
          | `Intervals ->
              let m = Interval_map.create () in
              Array.iter (Interval_map.install m) monitors;
              Interval_map.overlaps m
        in
        let i = ref 0 in
        Test.make
          ~name:(Printf.sprintf "%s_lookup_%d" label n)
          (Staged.stage (fun () ->
               let probe = probes.(!i land 4095) in
               incr i;
               ignore (overlaps probe : bool))))
      sizes
  in
  Test.make_grouped ~name:"ablation"
    (mk `Bitmap "bitmap" @ mk `Intervals "interval_list")

(* --- bechamel driver --- *)

let run_benchmarks () =
  let tests =
    Test.make_grouped ~name:"ebp" [ table2_group; appendix_a_group; ablation_group ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
  print_endline "Micro-benchmarks (host time per operation)";
  print_string
    (Ebp_util.Text_table.render
       ~header:[ "benchmark"; "ns/op" ]
       ~rows:(List.map (fun (n, ns) -> [ n; Printf.sprintf "%.1f" ns ]) rows)
       ());
  print_newline ()

(* --- live validation --- *)

let validation_src =
  {|
int buckets[64];
int main() {
  int i;
  int h;
  srand(5);
  for (i = 0; i < 500; i = i + 1) {
    h = rand(64);
    buckets[h] = buckets[h] + 1;
  }
  return 0;
}
|}

let run_validation () =
  print_endline "Validation: one session, five live strategies (must agree)";
  let compiled =
    match Ebp_lang.Compiler.compile validation_src with
    | Ok c -> c
    | Error e -> failwith e
  in
  let base =
    let r = Ebp_runtime.Loader.run (Ebp_runtime.Loader.load compiled) in
    r.Ebp_runtime.Loader.cycles
  in
  let rows =
    List.map
      (fun kind ->
        let dbg = Ebp_core.Debugger.load ~strategy:kind compiled in
        (match Ebp_core.Debugger.watch_global dbg "buckets" with
        | Ok () -> ()
        | Error e -> failwith e);
        ignore (Ebp_core.Debugger.run dbg);
        [
          Ebp_core.Debugger.strategy_name kind;
          string_of_int (List.length (Ebp_core.Debugger.hits dbg));
          Printf.sprintf "%.1fx"
            (float_of_int (Ebp_core.Debugger.cycles dbg) /. float_of_int base);
        ])
      [ Ebp_core.Debugger.Native_hardware; Ebp_core.Debugger.Virtual_memory;
        Ebp_core.Debugger.Trap_patch; Ebp_core.Debugger.Code_patch;
        Ebp_core.Debugger.Virtual_breakpoint ]
  in
  print_string
    (Ebp_util.Text_table.render ~header:[ "strategy"; "hits"; "cycle overhead" ]
       ~rows ());
  print_newline ()

(* --- CP hoisting ablation (paper §9's proposed optimization) --- *)

let run_hoisting_ablation () =
  print_endline
    "CodePatch implementations (Section 9): modeled check vs loop-hoisted vs\n\
     real in-memory check code, one quiet global watched per workload";
  let watched_global (w : Ebp_workloads.Workload.t) =
    match w.Ebp_workloads.Workload.name with
    | "typeset" -> "total_lines"
    | "lattice" -> "sweep_count"
    | "compiler" -> "node_count"
    | "circuit" -> "steps_done"
    | _ -> "expansions"
  in
  let cycles_under kind (w : Ebp_workloads.Workload.t) =
    let dbg =
      match
        Ebp_core.Debugger.load_source ~strategy:kind
          ~seed:w.Ebp_workloads.Workload.seed w.Ebp_workloads.Workload.source
      with
      | Ok d -> d
      | Error e -> failwith e
    in
    (match Ebp_core.Debugger.watch_global dbg (watched_global w) with
    | Ok () -> ()
    | Error e -> failwith e);
    ignore (Ebp_core.Debugger.run dbg);
    (Ebp_core.Debugger.cycles dbg, List.length (Ebp_core.Debugger.hits dbg))
  in
  let rows =
    List.map
      (fun w ->
        let cp, cp_hits = cycles_under Ebp_core.Debugger.Code_patch w in
        let hcp, hcp_hits = cycles_under Ebp_core.Debugger.Code_patch_hoisted w in
        let icp, icp_hits = cycles_under Ebp_core.Debugger.Code_patch_inline w in
        assert (cp_hits = hcp_hits && cp_hits = icp_hits);
        [
          w.Ebp_workloads.Workload.name;
          string_of_int cp_hits;
          string_of_int cp;
          string_of_int hcp;
          Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (float_of_int hcp /. float_of_int cp)));
          string_of_int icp;
          Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (float_of_int icp /. float_of_int cp)));
        ])
      Ebp_workloads.Workload.all
  in
  print_string
    (Ebp_util.Text_table.render
       ~header:
         [ "workload"; "hits"; "CP cycles"; "+hoist"; "hoist saves";
           "inline"; "inline saves" ]
       ~rows ());
  print_newline ()

(* --- parallel experiment engine: sequential vs sharded phase-2 replay --- *)

let wall_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, 1000.0 *. (Unix.gettimeofday () -. t0))

(* --- machine-readable output (--json FILE) --- *)

module Json = Ebp_obs.Json

(* Rows accumulated by the phase-1 and replay-engine sections; written as
   one JSON object at the end of the run so CI can archive the perf
   trajectory (BENCH_CI.json artifact). *)
let json_phase1 : Json.t list ref = ref []
let json_phase2 : Json.t list ref = ref []
let json_store : Json.t list ref = ref []
let json_query : Json.t list ref = ref []
let json_vb : Json.t list ref = ref []

(* Single object, not a row list: the streaming pipeline section measures
   one big run from several angles (bounded memory, first answer,
   checkpoint restart) and CI asserts on the named fields. *)
let json_streaming : Json.t ref = ref (Json.Obj [])

let write_json_file path =
  let j =
    Json.Obj
      [
        ("schema", Json.Str "ebp-bench/v1");
        ("phase1", Json.List (List.rev !json_phase1));
        ("phase2", Json.List (List.rev !json_phase2));
        ("store", Json.List (List.rev !json_store));
        ("query", Json.List (List.rev !json_query));
        ("vb", Json.List (List.rev !json_vb));
        ("streaming", !json_streaming);
      ]
  in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string j);
      output_char oc '\n')

(* Run one bench section with the observability subsystem enabled and
   dump what it accumulated right after the section's own output. The
   counters are reset per section, so e.g. the cold-cache experiment and
   the warm-cache parallel engine each show their own trace_cache
   hit/miss picture. *)
let with_section_metrics name f =
  Ebp_obs.Metrics.reset ();
  Ebp_obs.Span.reset ();
  Ebp_obs.Metrics.set_enabled true;
  let finish () =
    Ebp_obs.Metrics.set_enabled false;
    Printf.printf "--- metrics: %s ---\n" name;
    print_string (Ebp_util.Obs_report.render (Ebp_obs.Metrics.snapshot ()));
    print_newline ()
  in
  Fun.protect ~finally:finish f

let run_parallel_engine (t : Ebp_core.Experiment.t) ~workloads ~cache_dir
    ~seq_report =
  let module Replay = Ebp_sessions.Replay in
  let module Discovery = Ebp_sessions.Discovery in
  Printf.printf
    "Parallel engine: phase-2 replay sharded over domains (host has %d)\n"
    (Domain.recommended_domain_count ());
  let totals = Array.make 3 0.0 in
  let rows =
    List.map
      (fun pd ->
        let trace = pd.Ebp_core.Experiment.run.Ebp_workloads.Workload.trace in
        let sessions = Discovery.discover trace in
        let seq, seq_ms = wall_ms (fun () -> Replay.replay_all trace sessions) in
        let par2, ms2 =
          wall_ms (fun () -> Replay.replay_all ~domains:2 trace sessions)
        in
        let par4, ms4 =
          wall_ms (fun () -> Replay.replay_all ~domains:4 trace sessions)
        in
        let identical = par2 = seq && par4 = seq in
        totals.(0) <- totals.(0) +. seq_ms;
        totals.(1) <- totals.(1) +. ms2;
        totals.(2) <- totals.(2) +. ms4;
        [
          pd.Ebp_core.Experiment.run.Ebp_workloads.Workload.workload
            .Ebp_workloads.Workload.name;
          string_of_int (List.length sessions);
          string_of_int (Ebp_trace.Trace.length trace);
          Printf.sprintf "%.0f" seq_ms;
          Printf.sprintf "%.0f" ms2;
          Printf.sprintf "%.0f" ms4;
          Printf.sprintf "%.2fx" (seq_ms /. Float.min ms2 ms4);
          (if identical then "yes" else "NO");
        ])
      t.Ebp_core.Experiment.programs
  in
  let total_row =
    [
      "TOTAL"; ""; "";
      Printf.sprintf "%.0f" totals.(0);
      Printf.sprintf "%.0f" totals.(1);
      Printf.sprintf "%.0f" totals.(2);
      Printf.sprintf "%.2fx" (totals.(0) /. Float.min totals.(1) totals.(2));
      "";
    ]
  in
  print_string
    (Ebp_util.Text_table.render
       ~header:
         [ "workload"; "sessions"; "events"; "seq ms"; "2 domains ms";
           "4 domains ms"; "speedup"; "identical" ]
       ~rows:(rows @ [ total_row ]) ());
  Printf.printf
    "phase 2 speedup (sequential / best parallel, whole suite): %.2fx\n"
    (totals.(0) /. Float.min totals.(1) totals.(2));
  (* The whole engine, warm cache: phase 1 loads every trace from disk
     (zero machine execution) and phase 2 runs sharded. The reports must be
     byte-identical to the sequential engine's. *)
  let par_t, par_ms =
    wall_ms (fun () ->
        match Ebp_core.Experiment.run ~workloads ~domains:2 ~cache_dir () with
        | Ok t -> t
        | Error msg -> failwith ("parallel experiment: " ^ msg))
  in
  let executed =
    List.exists
      (fun pd ->
        pd.Ebp_core.Experiment.run.Ebp_workloads.Workload.result <> None)
      par_t.Ebp_core.Experiment.programs
  in
  Printf.printf
    "full experiment, 2 domains + warm trace cache: %.0f ms (phase-1 machine \
     execution: %s)\n"
    par_ms
    (if executed then "SOME -- cache miss!" else "none");
  let identical =
    String.equal (Ebp_core.Experiment.full_report par_t) seq_report
  in
  Printf.printf "parallel engine reports identical to sequential: %s\n"
    (if identical then "yes" else "NO");
  if not identical then begin
    prerr_endline "engine mismatch: parallel report differs from sequential";
    exit 1
  end;
  print_newline ()

(* --- phase 1: cold trace generation throughput + codec/cache I/O --- *)

let run_phase1 workloads =
  let module Workload = Ebp_workloads.Workload in
  let module Trace = Ebp_trace.Trace in
  let module Trace_cache = Ebp_trace.Trace_cache in
  print_endline
    "Phase 1: cold trace generation (predecoded interpreter), binary codec,\n\
     and trace-cache I/O";
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ebp-bench-phase1-%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists cache_dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat cache_dir f))
          (Sys.readdir cache_dir);
        Sys.rmdir cache_dir
      end)
    (fun () ->
      let rows =
        List.map
          (fun (w : Workload.t) ->
            Gc.compact ();
            let run, record_ms =
              wall_ms (fun () ->
                  match Workload.record w with
                  | Ok run -> run
                  | Error msg -> failwith ("phase-1 bench: " ^ msg))
            in
            let instructions =
              match run.Workload.result with
              | Some r -> r.Ebp_runtime.Loader.instructions
              | None -> 0
            in
            let events = Trace.length run.Workload.trace in
            let minstr_s = float_of_int instructions /. record_ms /. 1000.0 in
            let key = Workload.cache_key w in
            (match
               Trace_cache.store ~dir:cache_dir ~key run.Workload.trace
             with
            | Ok () -> ()
            | Error msg -> failwith ("phase-1 bench: cache store: " ^ msg));
            let entry_bytes =
              List.fold_left
                (fun acc (e : Trace_cache.entry) -> acc + e.Trace_cache.entry_bytes)
                0
                (Trace_cache.entries ~dir:cache_dir)
            in
            let bytes_per_event = float_of_int entry_bytes /. float_of_int events in
            Gc.compact ();
            let loaded, load_ms =
              wall_ms (fun () -> Trace_cache.lookup ~dir:cache_dir ~key)
            in
            (match loaded with
            | Some (t, _) when Trace.length t = events -> ()
            | Some _ -> failwith "phase-1 bench: warm load returned a different trace"
            | None -> failwith "phase-1 bench: warm load missed");
            (* One cache entry at a time keeps [entries] attribution exact. *)
            Trace_cache.clear ~dir:cache_dir |> ignore;
            json_phase1 :=
              Json.Obj
                [
                  ("workload", Json.Str w.Workload.name);
                  ("record_ms", Json.Float record_ms);
                  ("instructions", Json.Int instructions);
                  ("minstr_per_s", Json.Float minstr_s);
                  ("events", Json.Int events);
                  ("cache_entry_bytes", Json.Int entry_bytes);
                  ("bytes_per_event", Json.Float bytes_per_event);
                  ("warm_load_ms", Json.Float load_ms);
                ]
              :: !json_phase1;
            [
              w.Workload.name;
              Printf.sprintf "%.0f" record_ms;
              string_of_int instructions;
              Printf.sprintf "%.1f" minstr_s;
              string_of_int events;
              string_of_int entry_bytes;
              Printf.sprintf "%.1f" bytes_per_event;
              Printf.sprintf "%.0f" load_ms;
            ])
          workloads
      in
      print_string
        (Ebp_util.Text_table.render
           ~header:
             [ "workload"; "record ms"; "instructions"; "Minstr/s"; "events";
               "cache bytes"; "B/event"; "warm load ms" ]
           ~rows ());
      print_newline ())

(* --- robustness: integrity overhead on real cache entries --- *)

(* The checksum trailer is pure insurance; this section prices it: raw
   CRC-32 throughput over a real encoded trace, then the sealed
   store -> verify -> checksummed lookup path on a private cache
   directory. One workload and a handful of I/O round-trips, so it is
   cheap enough to run under --quick too. *)
let run_robustness (w : Ebp_workloads.Workload.t) =
  let module Workload = Ebp_workloads.Workload in
  let module Trace = Ebp_trace.Trace in
  let module Trace_cache = Ebp_trace.Trace_cache in
  print_endline
    "Integrity overhead: CRC-32 over the encoded trace, and the sealed\n\
     store -> verify -> checksummed lookup path";
  let run =
    match Workload.record w with
    | Ok run -> run
    | Error msg -> failwith ("robustness bench: " ^ msg)
  in
  let trace = run.Workload.trace in
  let encoded = Trace.encode trace in
  let mb = float_of_int (String.length encoded) /. 1048576.0 in
  let reps = 20 in
  let crc = ref 0 in
  let (), crc_ms =
    wall_ms (fun () ->
        for _ = 1 to reps do
          crc := Ebp_util.Crc32.string encoded
        done)
  in
  ignore !crc;
  let crc_ms = crc_ms /. float_of_int reps in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ebp-bench-robust-%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Trace_cache.clear ~dir |> ignore;
        Sys.rmdir dir
      end)
    (fun () ->
      let key = Workload.cache_key w in
      let (), store_ms =
        wall_ms (fun () ->
            match Trace_cache.store ~dir ~key trace with
            | Ok () -> ()
            | Error msg -> failwith ("robustness bench: store: " ^ msg))
      in
      let report, verify_ms =
        wall_ms (fun () -> Trace_cache.verify ~quarantine:false ~dir ())
      in
      if report.Trace_cache.corrupt <> [] then
        failwith "robustness bench: fresh entry reported corrupt";
      let loaded, lookup_ms =
        wall_ms (fun () -> Trace_cache.lookup ~dir ~key)
      in
      (match loaded with
      | Some _ -> ()
      | None -> failwith "robustness bench: checksummed lookup missed");
      print_string
        (Ebp_util.Text_table.render
           ~header:
             [ "workload"; "entry MB"; "crc ms"; "crc MB/s"; "store ms";
               "verify ms"; "lookup ms" ]
           ~rows:
             [
               [
                 w.Workload.name;
                 Printf.sprintf "%.2f" mb;
                 Printf.sprintf "%.3f" crc_ms;
                 Printf.sprintf "%.0f" (mb /. (crc_ms /. 1000.0));
                 Printf.sprintf "%.1f" store_ms;
                 Printf.sprintf "%.1f" verify_ms;
                 Printf.sprintf "%.1f" lookup_ms;
               ];
             ]
           ());
      print_newline ())

(* --- resident service: in-process core latency, warm vs cold --- *)

(* Prices what [ebp serve] exists to sell: the second query for a trace
   skips phase 1 entirely (LRU hit), and identical queries arriving
   together are answered by one replay. Runs against Core directly — no
   socket — so the numbers isolate the service scheduling + store, not
   connection plumbing. Cheap enough for --quick. *)
let run_serve (w : Ebp_workloads.Workload.t) =
  let module Core = Ebp_serve.Server.Core in
  let module P = Ebp_serve.Protocol in
  let module Workload = Ebp_workloads.Workload in
  print_endline
    "Resident service (ebp serve core): cold query (record + replay) vs\n\
     warm query (LRU hit), and a coalesced batch of identical queries";
  let core = Core.create { Core.default_config with domains = 2 } in
  Fun.protect ~finally:(fun () -> Core.shutdown core) @@ fun () ->
  let query =
    P.Sessions_query
      {
        name = w.Workload.name;
        source = w.Workload.source;
        seed = w.Workload.seed;
        engine = "indexed";
        keep_hitless = false;
      }
  in
  let one () =
    let ok = ref false in
    Core.submit core ~tenant:"bench"
      ~reply:(function P.Report _ -> ok := true | _ -> ())
      query;
    Core.drain core;
    if not !ok then failwith "serve bench: query failed"
  in
  let (), cold_ms = wall_ms one in
  let (), warm_ms = wall_ms one in
  let riders = 8 in
  let answered = ref 0 in
  let (), batch_ms =
    wall_ms (fun () ->
        for i = 1 to riders do
          Core.submit core
            ~tenant:(Printf.sprintf "tenant%d" (i mod 3))
            ~reply:(function P.Report _ -> incr answered | _ -> ())
            query
        done;
        Core.drain core)
  in
  if !answered <> riders then failwith "serve bench: batch incomplete";
  print_string
    (Ebp_util.Text_table.render
       ~header:
         [ "workload"; "cold ms"; "warm ms"; "warm speedup";
           Printf.sprintf "batch of %d ms" riders; "per rider ms" ]
       ~rows:
         [
           [
             w.Workload.name;
             Printf.sprintf "%.0f" cold_ms;
             Printf.sprintf "%.1f" warm_ms;
             Printf.sprintf "%.1fx" (cold_ms /. warm_ms);
             Printf.sprintf "%.1f" batch_ms;
             Printf.sprintf "%.1f" (batch_ms /. float_of_int riders);
           ];
         ]
       ());
  print_newline ()

(* --- replay engines: scan vs indexed phase-2 replay --- *)

let run_engine_comparison traces =
  let module Replay = Ebp_sessions.Replay in
  let module Discovery = Ebp_sessions.Discovery in
  let module Write_index = Ebp_trace.Write_index in
  print_endline
    "Replay engines (phase 2, domains=1): trace scan vs temporal write index";
  let totals = Array.make 3 0.0 in
  let mismatch = ref false in
  let rows =
    List.map
      (fun (name, trace) ->
        let sessions = Discovery.discover trace in
        (* Compact before each timed section: leftover major-heap garbage
           from the previous workload otherwise charges its collection
           cost to whoever runs next. *)
        Gc.compact ();
        let scan, scan_ms =
          wall_ms (fun () -> Replay.replay_all ~engine:Scan trace sessions)
        in
        Gc.compact ();
        let index, build_ms =
          wall_ms (fun () ->
              Write_index.build ~page_sizes:Replay.default_page_sizes trace)
        in
        Gc.compact ();
        let indexed, query_ms =
          wall_ms (fun () ->
              Replay.replay_all ~engine:Indexed ~index trace sessions)
        in
        let identical = indexed = scan in
        if not identical then mismatch := true;
        totals.(0) <- totals.(0) +. scan_ms;
        totals.(1) <- totals.(1) +. build_ms;
        totals.(2) <- totals.(2) +. query_ms;
        json_phase2 :=
          Json.Obj
            [
              ("workload", Json.Str name);
              ("sessions", Json.Int (List.length sessions));
              ("events", Json.Int (Ebp_trace.Trace.length trace));
              ("scan_ms", Json.Float scan_ms);
              ("index_build_ms", Json.Float build_ms);
              ("indexed_query_ms", Json.Float query_ms);
              ("identical", Json.Bool identical);
            ]
          :: !json_phase2;
        [
          name;
          string_of_int (List.length sessions);
          string_of_int (Ebp_trace.Trace.length trace);
          Printf.sprintf "%.0f" scan_ms;
          Printf.sprintf "%.0f" build_ms;
          Printf.sprintf "%.0f" query_ms;
          Printf.sprintf "%.2fx" (scan_ms /. query_ms);
          Printf.sprintf "%.2fx" (scan_ms /. (build_ms +. query_ms));
          (if identical then "yes" else "NO");
        ])
      traces
  in
  let total_row =
    [
      "TOTAL"; ""; "";
      Printf.sprintf "%.0f" totals.(0);
      Printf.sprintf "%.0f" totals.(1);
      Printf.sprintf "%.0f" totals.(2);
      Printf.sprintf "%.2fx" (totals.(0) /. totals.(2));
      Printf.sprintf "%.2fx" (totals.(0) /. (totals.(1) +. totals.(2)));
      "";
    ]
  in
  print_string
    (Ebp_util.Text_table.render
       ~header:
         [ "workload"; "sessions"; "events"; "scan ms"; "build ms"; "query ms";
           "speedup"; "amortized"; "identical" ]
       ~rows:(rows @ [ total_row ]) ());
  Printf.printf
    "indexed speedup, whole suite: %.2fx per query, %.2fx with the one-time \
     build\n"
    (totals.(0) /. totals.(2))
    (totals.(0) /. (totals.(1) +. totals.(2)));
  if !mismatch then begin
    prerr_endline "engine mismatch: indexed replay differs from scan replay";
    exit 1
  end;
  print_newline ()

(* --- query engines: compiled-onto-the-index vs streaming scan --- *)

(* The sixth bench workload: a fixed-seed synthetic program from the
   fuzzer's workload synthesizer, dialed up to >= 10^6 trace events. It
   exists purely to price query throughput at a scale the five paper
   workloads don't reach. *)
let synthetic_source () =
  let module Fuzz = Ebp_core.Fuzz in
  let knobs =
    { Fuzz.gen_events = 25; gen_heap_churn = 40; gen_session_density = 12 }
  in
  Fuzz.render (Fuzz.generate_knobbed ~knobs ~seed:42)

let synthetic_trace () =
  let source = synthetic_source () in
  match Ebp_trace.Recorder.record_source ~seed:42 ~fuel:80_000_000 source with
  | Error msg ->
      prerr_endline ("synthetic workload failed to record: " ^ msg);
      exit 1
  | Ok (_, trace, _) ->
      let events = Ebp_trace.Trace.length trace in
      if events < 1_000_000 then begin
        Printf.eprintf
          "synthetic workload too small: %d events (need >= 10^6)\n" events;
        exit 1
      end;
      trace

(* --- streaming record pipeline: bounded memory, first answer, travel --- *)

(* The streaming section's headline claims, each measured on synthetic
   workloads from the fuzzer's synthesizer:
     1. a >= 10^7-event trace records through the block emitter with
        O(block) writer state — the process's peak heap barely moves,
        where the batch builder would materialize ~events * 4 words;
     2. a live prefix query answers long before the recording would
        finish (time-to-first-answer is per-block, not per-trace);
     3. restarting replay from the nearest checkpoint beats a step-0
        seek by >= 5x, with bit-identical machine state (state_digest);
     4. the streamed trace and incrementally-merged index are
        bit-identical to their batch counterparts.
   Runs first in the bench (before any trace is materialized) so the
   top-of-heap delta in (1) measures streaming alone. *)
let run_streaming () =
  let module Fuzz = Ebp_core.Fuzz in
  let module Stream = Ebp_trace.Stream in
  let module Recorder = Ebp_trace.Recorder in
  let module Checkpoint = Ebp_trace.Checkpoint in
  let module Write_index = Ebp_trace.Write_index in
  let module Loader = Ebp_runtime.Loader in
  let module Query = Ebp_query.Query in
  let module Qresult = Ebp_query.Qresult in
  let page_sizes = Ebp_sessions.Replay.default_page_sizes in
  let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  (* 1. Bounded-memory record of a ~10^7-event workload. The trace goes
     to a byte counter — on disk it would be the same O(block) state. *)
  let big_source =
    (* Pure hot-write loops: the trace dwarfs the program's own heap, so
       the top-of-heap delta isolates the recording pipeline, and the
       first block seals as soon as the machine starts writing. *)
    let knobs =
      { Fuzz.gen_events = 500; gen_heap_churn = 0; gen_session_density = 0 }
    in
    Fuzz.render (Fuzz.generate_knobbed ~knobs ~seed:42)
  in
  Gc.compact ();
  let top0 = (Gc.quick_stat ()).Gc.top_heap_words in
  let bytes_out = ref 0 and blocks = ref 0 in
  let big_events, record_ms =
    wall_ms (fun () ->
        match
          Recorder.record_source_stream ~seed:42
            ~on_seal:(fun ~first:_ ~count:_ ~nobjs:_ _ -> incr blocks)
            ~write:(fun s -> bytes_out := !bytes_out + String.length s)
            big_source
        with
        | Error msg -> die "streaming bench failed to record: %s" msg
        | Ok (_res, events) -> events)
  in
  if big_events < 10_000_000 then
    die "streaming workload too small: %d events (need >= 10^7)" big_events;
  let top_growth_mb =
    float_of_int (((Gc.quick_stat ()).Gc.top_heap_words - top0) * 8)
    /. 1048576.0
  in
  Printf.printf
    "record    %9d events -> %d sealed blocks, %.1f MB stream, %.0f ms\n"
    big_events !blocks
    (float_of_int !bytes_out /. 1048576.0)
    record_ms;
  Printf.printf
    "memory    top-of-heap grew %.1f MB (batch builder would need >= %.0f MB)\n"
    top_growth_mb
    (float_of_int (big_events * 4 * 8) /. 1048576.0);
  (* 2. Time-to-first-answer: a live job over the same program answers a
     prefix query after one sealed block, while the machine runs on. *)
  let q =
    match Query.parse "count" with
    | Ok q -> q
    | Error _ -> die "streaming bench: query failed to parse"
  in
  let live = Ebp_serve.Live.create () in
  let first_hw = ref 0 in
  let first_answer_ms =
    snd
      (wall_ms (fun () ->
           match
             Ebp_serve.Live.fetch live ~name:"streaming-bench"
               ~source:big_source ~seed:42 ~min_events:0
           with
           | Error msg -> die "streaming bench: live fetch: %s" msg
           | Ok p ->
               first_hw := p.Ebp_serve.Live.p_high_water;
               ignore
                 (Query.run ?index:p.Ebp_serve.Live.p_index
                    p.Ebp_serve.Live.p_trace q)))
  in
  Printf.printf
    "live      first answer in %.1f ms over %d sealed events (full record: \
     %.0f ms, %.1fx later)\n"
    first_answer_ms !first_hw record_ms
    (record_ms /. Float.max 0.1 first_answer_ms);
  (* 3 + 4. On the 10^6-event synthetic workload (small enough to also
     hold the batch trace): stream-vs-batch identity, then checkpointed
     time travel near the end of the trace. *)
  let mid_source = synthetic_source () in
  let mid_fuel = 80_000_000 in
  let compiled =
    match Ebp_lang.Compiler.compile mid_source with
    | Ok c -> c
    | Error msg -> die "streaming bench: compile: %s" msg
  in
  let batch =
    match Recorder.record_source ~seed:42 ~fuel:mid_fuel mid_source with
    | Ok (_, trace, _) -> trace
    | Error msg -> die "streaming bench: batch record: %s" msg
  in
  let batch_index = Write_index.build ~page_sizes batch in
  let buf = Buffer.create (1 lsl 20) in
  let inc = Write_index.Incremental.create ~page_sizes in
  let chain = Checkpoint.create () in
  let writer = Stream.Writer.create ~write:(Buffer.add_string buf) () in
  Stream.Writer.set_on_seal writer (fun ~first:_ ~count ~nobjs iter ->
      Write_index.Incremental.add_block inc ~nobjs ~count iter);
  let loader = Loader.load ~seed:42 compiled in
  let recorder = Recorder.attach_stream writer loader in
  ignore
    (Checkpoint.run_with_checkpoints ~fuel:mid_fuel ~every:200_000
       ~events:(fun () -> Stream.Writer.events writer)
       ~nobjs:(fun () -> Stream.Writer.object_count writer)
       chain loader recorder);
  Recorder.finish_events recorder;
  Stream.Writer.finish writer;
  let streamed =
    match Stream.read (Buffer.contents buf) with
    | Ok t -> t
    | Error msg -> die "streaming bench: stream read: %s" msg
  in
  let identical_trace =
    Ebp_trace.Trace.encode streamed = Ebp_trace.Trace.encode batch
  in
  let identical_index =
    match Write_index.Incremental.snapshot inc with
    | Some i -> Write_index.equal i batch_index
    | None -> false
  in
  Printf.printf
    "identity  streamed trace %s batch; incremental index %s batch build\n"
    (if identical_trace then "==" else "!=")
    (if identical_index then "==" else "!=");
  let total = Ebp_trace.Trace.length batch in
  let stamps = Checkpoint.events chain in
  if stamps = [] then die "streaming bench: no checkpoints taken";
  let event = List.fold_left max 0 stamps + 1_000 in
  let event = min event total in
  let load () = Loader.load ~seed:42 compiled in
  let step0_digest, step0_ms =
    wall_ms (fun () ->
        let loader = load () in
        let counters = { Recorder.c_events = 0; c_objs = 0 } in
        ignore (Recorder.attach_sink (Recorder.counting_sink counters) loader);
        ignore (Checkpoint.seek loader counters ~event);
        Checkpoint.state_digest loader counters)
  in
  let restart_digest, restart_ms =
    wall_ms (fun () ->
        match Checkpoint.restore chain ~event ~load with
        | None -> die "streaming bench: no checkpoint precedes event %d" event
        | Some r ->
            ignore
              (Checkpoint.seek r.Checkpoint.rs_loader r.Checkpoint.rs_counters
                 ~event);
            Checkpoint.state_digest r.Checkpoint.rs_loader
              r.Checkpoint.rs_counters)
  in
  let digests_match = step0_digest = restart_digest in
  let speedup = step0_ms /. Float.max 0.01 restart_ms in
  Printf.printf
    "travel    event %d of %d: restart %.1f ms vs step-0 %.1f ms (%.1fx), \
     digests %s\n"
    event total restart_ms step0_ms speedup
    (if digests_match then "match" else "DIFFER");
  json_streaming :=
    Json.Obj
      [
        ("events", Json.Int big_events);
        ("blocks", Json.Int !blocks);
        ("stream_bytes", Json.Int !bytes_out);
        ("record_ms", Json.Float record_ms);
        ("top_heap_growth_mb", Json.Float top_growth_mb);
        ("first_answer_ms", Json.Float first_answer_ms);
        ("first_high_water", Json.Int !first_hw);
        ("identical_trace", Json.Bool identical_trace);
        ("identical_index", Json.Bool identical_index);
        ("checkpoints", Json.Int (Checkpoint.count chain));
        ("travel_event", Json.Int event);
        ("step0_ms", Json.Float step0_ms);
        ("restart_ms", Json.Float restart_ms);
        ("restart_speedup", Json.Float speedup);
        ("digests_match", Json.Bool digests_match);
      ];
  if not (identical_trace && identical_index && digests_match) then begin
    prerr_endline "streaming pipeline mismatch: see section output above";
    exit 1
  end;
  print_newline ()

(* One live() spec per workload, naming a scalar global each program
   actually has — the session-window join shape the paper's phase 2 is
   built around. *)
let live_spec_of = function
  | "compiler" -> "global:node_count"
  | "typeset" -> "global:total_lines"
  | "circuit" -> "global:steps_done"
  | "lattice" -> "global:sweep_count"
  | "puzzle" -> "global:expansions"
  | "synthetic" -> "global:q0"
  | name -> failwith ("no live() spec for workload " ^ name)

let run_query traces =
  let module Query = Ebp_query.Query in
  let module Qresult = Ebp_query.Qresult in
  let module Write_index = Ebp_trace.Write_index in
  print_endline
    "Query engines: compiled onto the write index vs streaming scan\n\
     (each query asserted result-identical between engines; ms is the\n\
     mean of 5 runs)";
  let reps = 5 in
  let timed f =
    Gc.compact ();
    let _, ms =
      wall_ms (fun () ->
          for _ = 1 to reps do
            ignore (f ())
          done)
    in
    ms /. float_of_int reps
  in
  let mismatch = ref false in
  let rows =
    List.concat_map
      (fun (name, trace) ->
        let events = Ebp_trace.Trace.length trace in
        let index, build_ms =
          wall_ms (fun () ->
              Write_index.build
                ~page_sizes:Ebp_sessions.Replay.default_page_sizes trace)
        in
        Printf.printf "%-10s %9d events, index built in %.0f ms\n%!" name
          events build_ms;
        let shapes =
          [
            ("count", "count");
            ("window", Printf.sprintf "count where time in [0,%d]" (events / 2));
            ("group-pc", "count group by pc top 5");
            ("histogram",
             Printf.sprintf "count bucket by %d" (max 1 (events / 64)));
            ("live-join",
             Printf.sprintf "count where live(%s)" (live_spec_of name));
            ("live-group",
             Printf.sprintf "count where live(%s) group by pc top 3"
               (live_spec_of name));
          ]
        in
        List.map
          (fun (shape, expr) ->
            let q =
              match Query.parse expr with
              | Ok q -> q
              | Error e ->
                  prerr_endline
                    ("bench query failed to parse: "
                    ^ Ebp_query.Parser.error_line expr e);
                  exit 1
            in
            let indexed = Query.run ~engine:Query.Indexed ~index trace q in
            let scan = Query.run ~engine:Query.Scan trace q in
            let identical =
              Qresult.equal indexed.Query.raw scan.Query.raw
            in
            if not identical then mismatch := true;
            let indexed_ms =
              timed (fun () -> Query.run ~engine:Query.Indexed ~index trace q)
            in
            let scan_ms =
              timed (fun () -> Query.run ~engine:Query.Scan trace q)
            in
            json_query :=
              Json.Obj
                [
                  ("workload", Json.Str name);
                  ("shape", Json.Str shape);
                  ("query", Json.Str expr);
                  ("events", Json.Int events);
                  ("index_build_ms", Json.Float build_ms);
                  ("scan_ms", Json.Float scan_ms);
                  ("indexed_ms", Json.Float indexed_ms);
                  ("identical", Json.Bool identical);
                ]
              :: !json_query;
            [
              name;
              shape;
              Printf.sprintf "%.2f" scan_ms;
              Printf.sprintf "%.2f" indexed_ms;
              Printf.sprintf "%.1fx" (scan_ms /. indexed_ms);
              (if identical then "yes" else "NO");
            ])
          shapes)
      traces
  in
  print_string
    (Ebp_util.Text_table.render
       ~header:
         [ "workload"; "shape"; "scan ms"; "indexed ms"; "speedup";
           "identical" ]
       ~rows ());
  if !mismatch then begin
    prerr_endline "query engine mismatch: compiled result differs from scan";
    exit 1
  end;
  print_newline ()

(* --- zero-copy store: mmap vs decode, parallel build, planner --- *)

(* Prices the EBPT3 tier end to end: a warm load through the mmap'd
   columnar sidecar vs a warm EBPT2 decode (time and allocation — the
   mapped load must be near-allocation-free), the chunked index build vs
   the serial one (asserted structurally identical), and the cost-based
   planner against both fixed engines (asserted bit-identical). Cheap
   enough for --quick. *)
let run_store traces =
  let module Trace = Ebp_trace.Trace in
  let module Trace_cache = Ebp_trace.Trace_cache in
  let module Write_index = Ebp_trace.Write_index in
  let module Replay = Ebp_sessions.Replay in
  let module Planner = Ebp_sessions.Planner in
  print_endline
    "Zero-copy trace store (EBPT3): warm load via mmap vs EBPT2 decode,\n\
     serial vs chunked index build, and the cost-based planner vs both\n\
     fixed engines";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ebp-bench-store-%d" (Unix.getpid ()))
  in
  let domains = min 4 (Domain.recommended_domain_count ()) in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Trace_cache.clear ~dir |> ignore;
        Sys.rmdir dir
      end)
    (fun () ->
      let reps = 5 in
      let timed_alloc f =
        (* Mean wall time and allocation of [reps] runs, after a compact
           so the previous row's garbage is not charged here. *)
        Gc.compact ();
        let a0 = Gc.allocated_bytes () in
        let last = ref None in
        let (), ms =
          wall_ms (fun () ->
              for _ = 1 to reps do
                last := Some (f ())
              done)
        in
        let alloc = (Gc.allocated_bytes () -. a0) /. float_of_int reps in
        match !last with
        | Some r -> (r, ms /. float_of_int reps, alloc)
        | None -> assert false
      in
      let load_rows, planner_rows =
        List.split
          (List.map
             (fun (name, trace) ->
               let key =
                 Trace_cache.make_key ~name:("bench-store-" ^ name) ~source:""
                   ~seed:0 ()
               in
               (match Trace_cache.store ~dir ~key trace with
               | Ok () -> ()
               | Error msg -> failwith ("store bench: " ^ msg));
               let decoded, decode_ms, decode_alloc =
                 timed_alloc (fun () ->
                     match Trace_cache.lookup_decoded ~dir ~key with
                     | Some (t, _) -> t
                     | None -> failwith "store bench: decoded lookup missed")
               in
               let mapped, map_ms, map_alloc =
                 timed_alloc (fun () ->
                     match Trace_cache.lookup ~dir ~key with
                     | Some (t, _) -> t
                     | None -> failwith "store bench: mapped lookup missed")
               in
               if Trace.is_mapped decoded then
                 failwith "store bench: decoded tier returned a mapping";
               if not (Trace.is_mapped mapped) then
                 failwith "store bench: warm lookup did not mmap";
               let speedup = decode_ms /. map_ms in
               (* Chunked index build across a pool vs the serial build. *)
               let page_sizes = Replay.default_page_sizes in
               Gc.compact ();
               let serial_ix, serial_ms =
                 wall_ms (fun () -> Write_index.build ~page_sizes trace)
               in
               Gc.compact ();
               let parallel_ix, parallel_ms =
                 Ebp_util.Domain_pool.with_pool ~domains (fun pool ->
                     wall_ms (fun () ->
                         Write_index.build ~pool ~page_sizes trace))
               in
               let build_identical = Write_index.equal serial_ix parallel_ix in
               if not build_identical then begin
                 prerr_endline
                   ("store bench: parallel index build differs on " ^ name);
                 exit 1
               end;
               (* The planner (cold, no cached index) against both fixed
                  engines, all on the mapped trace. *)
               let decision = ref "?" in
               let planned, planner_ms =
                 wall_ms (fun () ->
                     Planner.replay
                       ~log:(fun line ->
                         decision :=
                           String.sub line 9
                             (String.index_from line 9 ' ' - 9))
                       mapped)
               in
               let scan, scan_ms =
                 wall_ms (fun () ->
                     Replay.discover_and_replay ~engine:Replay.Scan mapped)
               in
               let indexed, indexed_ms =
                 wall_ms (fun () ->
                     Replay.discover_and_replay ~engine:Replay.Indexed mapped)
               in
               let planner_identical = planned = scan && planned = indexed in
               if not planner_identical then begin
                 prerr_endline
                   ("store bench: planner report differs from a fixed engine \
                     on " ^ name);
                 exit 1
               end;
               json_store :=
                 Json.Obj
                   [
                     ("workload", Json.Str name);
                     ("events", Json.Int (Trace.length trace));
                     ("decoded_warm_ms", Json.Float decode_ms);
                     ("mmap_warm_ms", Json.Float map_ms);
                     ("warm_load_speedup", Json.Float speedup);
                     ("decoded_alloc_bytes", Json.Float decode_alloc);
                     ("mmap_alloc_bytes", Json.Float map_alloc);
                     ("index_build_serial_ms", Json.Float serial_ms);
                     ("index_build_parallel_ms", Json.Float parallel_ms);
                     ("parallel_build_identical", Json.Bool build_identical);
                     ("planner_decision", Json.Str !decision);
                     ("planner_ms", Json.Float planner_ms);
                     ("planner_identical", Json.Bool planner_identical);
                   ]
                 :: !json_store;
               ( [
                   name;
                   string_of_int (Trace.length trace);
                   Printf.sprintf "%.2f" decode_ms;
                   Printf.sprintf "%.3f" map_ms;
                   Printf.sprintf "%.1fx" speedup;
                   Printf.sprintf "%.0f" decode_alloc;
                   Printf.sprintf "%.0f" map_alloc;
                   Printf.sprintf "%.0f" serial_ms;
                   Printf.sprintf "%.0f" parallel_ms;
                 ],
                 [
                   name;
                   !decision;
                   Printf.sprintf "%.0f" planner_ms;
                   Printf.sprintf "%.0f" scan_ms;
                   Printf.sprintf "%.0f" indexed_ms;
                   (if planner_identical then "yes" else "NO");
                 ] ))
             traces)
      in
      print_string
        (Ebp_util.Text_table.render
           ~header:
             [ "workload"; "events"; "decode ms"; "mmap ms"; "speedup";
               "decode alloc B"; "mmap alloc B";
               "build ms"; Printf.sprintf "build ms (%dd)" domains ]
           ~rows:load_rows ());
      print_newline ();
      print_string
        (Ebp_util.Text_table.render
           ~header:
             [ "workload"; "decision"; "planner ms"; "scan ms"; "indexed ms";
               "identical" ]
           ~rows:planner_rows ());
      print_newline ())

(* --- remote-WMS ablation (§3.4): ptrace-style cross-address-space WMS --- *)

let run_remote_ablation (t : Ebp_core.Experiment.t) =
  let module Model = Ebp_model.Strategy_model in
  let module Stats = Ebp_util.Stats in
  print_endline
    "Remote WMS ablation (Section 3.4): mapping kept in a separate address\n\
     space, two context switches per fault (T-Mean relative overhead)";
  let approaches =
    [ Model.NH; Model.Remote Model.NH; Model.VM 4096;
      Model.Remote (Model.VM 4096); Model.TP; Model.Remote Model.TP; Model.CP ]
  in
  let rows =
    List.map
      (fun pd ->
        pd.Ebp_core.Experiment.run.Ebp_workloads.Workload.workload
          .Ebp_workloads.Workload.name
        :: List.map
             (fun a ->
               let s =
                 Stats.summarize (Ebp_core.Experiment.relative_overheads t pd a)
               in
               Printf.sprintf "%.2f" s.Stats.t_mean)
             approaches)
      t.Ebp_core.Experiment.programs
  in
  print_string
    (Ebp_util.Text_table.render
       ~header:("workload" :: List.map Model.name approaches)
       ~rows ());
  print_newline ()

(* --- VB vs VM: the fifth strategy against the one it shadows --- *)

(* VirtualBreakpoint inherits VirtualMemory's fault-generating sets at
   each granularity, so the comparison isolates the per-event price: a
   hypervisor exit + view switch against a guest trap + signal dispatch
   + mprotect traffic. Modeled side from the experiment's replayed
   counts; live side runs one watched global per workload under both
   strategies and demands identical hit counts. *)
let run_vb_comparison (t : Ebp_core.Experiment.t) =
  let module Model = Ebp_model.Strategy_model in
  let module Stats = Ebp_util.Stats in
  print_endline
    "VirtualBreakpoint vs VirtualMemory: same faults, hypervisor prices\n\
     (T-Mean relative overhead; live cycles on one watched global)";
  let watched_global (w : Ebp_workloads.Workload.t) =
    match w.Ebp_workloads.Workload.name with
    | "typeset" -> "total_lines"
    | "lattice" -> "sweep_count"
    | "compiler" -> "node_count"
    | "circuit" -> "steps_done"
    | _ -> "expansions"
  in
  let live_under kind (w : Ebp_workloads.Workload.t) =
    let dbg =
      match
        Ebp_core.Debugger.load_source ~strategy:kind
          ~seed:w.Ebp_workloads.Workload.seed w.Ebp_workloads.Workload.source
      with
      | Ok d -> d
      | Error e -> failwith e
    in
    (match Ebp_core.Debugger.watch_global dbg (watched_global w) with
    | Ok () -> ()
    | Error e -> failwith e);
    ignore (Ebp_core.Debugger.run dbg);
    (Ebp_core.Debugger.cycles dbg, List.length (Ebp_core.Debugger.hits dbg))
  in
  let rows =
    List.map
      (fun pd ->
        let w =
          pd.Ebp_core.Experiment.run.Ebp_workloads.Workload.workload
        in
        let name = w.Ebp_workloads.Workload.name in
        let t_mean a =
          (Stats.summarize (Ebp_core.Experiment.relative_overheads t pd a))
            .Stats.t_mean
        in
        let vm4 = t_mean (Model.VM 4096) and vb4 = t_mean (Model.VB 4096) in
        let vm8 = t_mean (Model.VM 8192) and vb8 = t_mean (Model.VB 8192) in
        let vm_cycles, vm_hits = live_under Ebp_core.Debugger.Virtual_memory w in
        let vb_cycles, vb_hits =
          live_under Ebp_core.Debugger.Virtual_breakpoint w
        in
        json_vb :=
          Json.Obj
            [
              ("workload", Json.Str name);
              ("vm4k_tmean_rel", Json.Float vm4);
              ("vb4k_tmean_rel", Json.Float vb4);
              ("vm8k_tmean_rel", Json.Float vm8);
              ("vb8k_tmean_rel", Json.Float vb8);
              ("live_vm_cycles", Json.Int vm_cycles);
              ("live_vb_cycles", Json.Int vb_cycles);
              ("live_hits", Json.Int vb_hits);
              ("live_hits_agree", Json.Bool (vm_hits = vb_hits));
            ]
          :: !json_vb;
        [
          name;
          Printf.sprintf "%.2f" vm4;
          Printf.sprintf "%.2f" vb4;
          Printf.sprintf "%.1fx" (vm4 /. Float.max vb4 1e-9);
          Printf.sprintf "%.2f" vm8;
          Printf.sprintf "%.2f" vb8;
          string_of_int vm_cycles;
          string_of_int vb_cycles;
          (if vm_hits = vb_hits then string_of_int vb_hits
           else Printf.sprintf "MISMATCH %d/%d" vm_hits vb_hits);
        ])
      t.Ebp_core.Experiment.programs
  in
  print_string
    (Ebp_util.Text_table.render
       ~header:
         [ "workload"; "VM-4K"; "VB-4K"; "VB gain"; "VM-8K"; "VB-8K";
           "live VM cycles"; "live VB cycles"; "hits" ]
       ~rows ());
  print_newline ()

let traces_of (t : Ebp_core.Experiment.t) =
  List.map
    (fun pd ->
      ( pd.Ebp_core.Experiment.run.Ebp_workloads.Workload.workload
          .Ebp_workloads.Workload.name,
        pd.Ebp_core.Experiment.run.Ebp_workloads.Workload.trace ))
    t.Ebp_core.Experiment.programs

let () =
  (* --quick: a CI smoke pass — circuit-only experiment plus the engine
     comparison, skipping the bechamel micro-benchmarks and the slow
     ablations. --engines: only the scan-vs-indexed comparison, all
     workloads (the table EXPERIMENTS.md quotes). --json FILE: also dump
     the phase-1/phase-2 rows as machine-readable JSON. *)
  let flag name = Array.exists (String.equal name) Sys.argv in
  let quick = flag "--quick" and engines_only = flag "--engines" in
  let json_path =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then None
      else if Sys.argv.(i) = "--json" then Some Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  print_endline "=== Efficient Data Breakpoints: benchmark harness ===";
  print_newline ();
  (* Streaming runs first: its bounded-memory claim is a top-of-heap
     delta, which only means something before other sections have
     materialized batch traces. *)
  if not engines_only then begin
    print_endline "=== Streaming record pipeline ===";
    print_newline ();
    with_section_metrics "streaming pipeline (stream, live, travel)"
      run_streaming
  end;
  if not (quick || engines_only) then run_benchmarks ();
  let workloads =
    if quick then
      List.filter
        (fun w -> w.Ebp_workloads.Workload.name = "circuit")
        Ebp_workloads.Workload.all
    else Ebp_workloads.Workload.all
  in
  if not engines_only then begin
    print_endline "=== Phase 1: trace generation ===";
    print_newline ();
    with_section_metrics "phase 1 (cold record, codec, cache)" (fun () ->
        run_phase1 workloads);
    print_endline "=== Robustness: cache integrity overhead ===";
    print_newline ();
    with_section_metrics "robustness (crc, store, verify)" (fun () ->
        run_robustness (List.hd workloads));
    print_endline "=== Resident service: warm-store query latency ===";
    print_newline ();
    with_section_metrics "resident service (serve core)" (fun () ->
        run_serve (List.hd workloads))
  end;
  print_endline "=== Simulation experiment (Tables 1-4, Figures 7-9) ===";
  print_newline ();
  (* A private trace cache for this bench run: the first (sequential)
     experiment populates it, the parallel engine below rides it warm. *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ebp-bench-cache-%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists cache_dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat cache_dir f))
          (Sys.readdir cache_dir);
        Sys.rmdir cache_dir
      end)
    (fun () ->
      match
        with_section_metrics "simulation experiment (cold trace cache)"
          (fun () -> Ebp_core.Experiment.run ~workloads ~cache_dir ())
      with
      | Error msg ->
          prerr_endline ("experiment failed: " ^ msg);
          exit 1
      | Ok t ->
          let seq_report = Ebp_core.Experiment.full_report t in
          if not engines_only then begin
            print_string seq_report;
            print_newline ()
          end;
          print_endline "=== Replay engines ===";
          print_newline ();
          with_section_metrics "replay engines" (fun () ->
              run_engine_comparison (traces_of t));
          if not engines_only then begin
            print_endline "=== Query engines ===";
            print_newline ();
            with_section_metrics "query engines (indexed vs scan)" (fun () ->
                run_query (traces_of t @ [ ("synthetic", synthetic_trace ()) ]))
          end;
          if not engines_only then begin
            print_endline "=== Zero-copy store and planner ===";
            print_newline ();
            with_section_metrics "zero-copy store (mmap, chunked build, planner)"
              (fun () -> run_store (traces_of t))
          end;
          if not engines_only then begin
            print_endline "=== Parallel experiment engine ===";
            print_newline ();
            with_section_metrics "parallel engine (warm trace cache)"
              (fun () -> run_parallel_engine t ~workloads ~cache_dir ~seq_report);
            run_remote_ablation t;
            print_endline "=== Virtual breakpoints (VB vs VM) ===";
            print_newline ();
            with_section_metrics "virtual breakpoints (VB vs VM)" (fun () ->
                run_vb_comparison t)
          end);
  if not (quick || engines_only) then begin
    run_validation ();
    run_hoisting_ablation ()
  end;
  match json_path with
  | Some path ->
      write_json_file path;
      Printf.printf "bench JSON written to %s\n" path
  | None -> ()
