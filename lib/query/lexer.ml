(* Hand-rolled lexer for the query language, in lib/lang's style but
   tracking byte offsets instead of line numbers: queries are one-liners
   and every diagnostic carries a caret position. *)

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

exception Lex_error of string * int

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let pos = ref 0 in
  let emit token ~at = tokens := { Token.token; pos = at } :: !tokens in
  let peek k = if !pos + k < n then Some source.[!pos + k] else None in
  let fail ~at msg = raise (Lex_error (msg, at)) in
  try
    while !pos < n do
      let c = source.[!pos] in
      let start = !pos in
      if c = ' ' || c = '\t' || c = '\r' || c = '\n' then incr pos
      else if is_digit c then begin
        if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
          pos := !pos + 2;
          while !pos < n && is_hex_digit source.[!pos] do
            incr pos
          done
        end
        else
          while !pos < n && is_digit source.[!pos] do
            incr pos
          done;
        let text = String.sub source start (!pos - start) in
        match int_of_string_opt text with
        | Some v -> emit (Token.Int v) ~at:start
        | None -> fail ~at:start (Printf.sprintf "bad integer literal %S" text)
      end
      else if is_ident_start c then begin
        while !pos < n && is_ident_char source.[!pos] do
          incr pos
        done;
        let text = String.sub source start (!pos - start) in
        emit (Token.Ident text) ~at:start;
        (* [live(...)] carries a session descriptor whose syntax (dots,
           colons, '#') is not made of query tokens: capture the raw
           text up to the closing paren as one token. *)
        if text = "live" then begin
          while !pos < n && (source.[!pos] = ' ' || source.[!pos] = '\t') do
            incr pos
          done;
          if !pos < n && source.[!pos] = '(' then begin
            emit Token.Lparen ~at:!pos;
            incr pos;
            let spec_start = !pos in
            while !pos < n && source.[!pos] <> ')' do
              incr pos
            done;
            if !pos >= n then
              fail ~at:(spec_start - 1) "unterminated live(...): missing ')'";
            let spec = String.trim (String.sub source spec_start (!pos - spec_start)) in
            emit (Token.Session_spec spec) ~at:spec_start;
            emit Token.Rparen ~at:!pos;
            incr pos
          end
        end
      end
      else begin
        incr pos;
        match c with
        | '(' -> emit Token.Lparen ~at:start
        | ')' -> emit Token.Rparen ~at:start
        | '[' -> emit Token.Lbracket ~at:start
        | ']' -> emit Token.Rbracket ~at:start
        | ',' -> emit Token.Comma ~at:start
        | '=' -> emit Token.Eq ~at:start
        | '!' ->
            if peek 0 = Some '=' then begin
              incr pos;
              emit Token.Ne ~at:start
            end
            else fail ~at:start "expected '=' after '!'"
        | '<' ->
            if peek 0 = Some '=' then begin
              incr pos;
              emit Token.Le ~at:start
            end
            else emit Token.Lt ~at:start
        | '>' ->
            if peek 0 = Some '=' then begin
              incr pos;
              emit Token.Ge ~at:start
            end
            else emit Token.Gt ~at:start
        | c -> fail ~at:start (Printf.sprintf "unexpected character %C" c)
      end
    done;
    emit Token.Eof ~at:n;
    Ok (List.rev !tokens)
  with Lex_error (msg, at) -> Error (msg, at)
