module Interval = Ebp_util.Interval
module Instr = Ebp_isa.Instr
module Reg = Ebp_isa.Reg
module Program = Ebp_isa.Program
module Cfg = Ebp_isa.Cfg
module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory

(* A scratch region between the heap and the stack of MiniC programs: the
   WMS flag words live here, written only by the (privileged) service, read
   by the guard loads — "a small amount of read-only WMS data in the
   debuggee's address space" (§3.4, §9). *)
let flag_region_base = 0x00E0_0000

let flag_addr f = flag_region_base + (4 * f)

type patched = {
  prog : Program.t;
  original_length : int;
  store_count : int;
  hoisted : int;
  loops_optimized : int;
  flag_count : int;
  pre_check_flags : (int, int) Hashtbl.t;  (* pre-check Chk pc -> flag index *)
  check_sites : (int, int) Hashtbl.t;  (* per-store Chk pc -> original index *)
  guarded_check_pcs : (int, unit) Hashtbl.t;
  guarded_store_pcs : (int, unit) Hashtbl.t;  (* relocated store slots of guarded stubs *)
  (* base/off/width of each flag's store, for pre-check emission order. *)
  flag_ranges_hint : (int * Instr.t) array;  (* flag -> (store idx, store instr) *)
}

let store_parts = function
  | Instr.Sw (rd, rs, off) -> (rd, rs, off, 4)
  | Instr.Sb (rd, rs, off) -> (rd, rs, off, 1)
  | _ -> invalid_arg "Hoisted_code_patch: not a store"

let item instr = { Program.instr; implicit = false }

let instrument orig =
  if not (Program.is_resolved orig) then
    invalid_arg "Hoisted_code_patch.instrument: program has unresolved labels";
  let original_length = Program.length orig in
  let stores = Program.stores orig in
  let loops = Cfg.loops orig in
  (* Decide hoistability against the ORIGINAL program. *)
  let classify (idx, instr) =
    let _, rs, _, _ = store_parts instr in
    match Cfg.innermost_containing loops idx with
    | Some l when Cfg.reg_invariant orig ~lo:l.Cfg.header ~hi:l.Cfg.back_edge rs ->
        `Hoisted l
    | Some _ | None -> `Plain
  in
  let classified = List.map (fun s -> (s, classify s)) stores in
  let pre_check_flags = Hashtbl.create 16 in
  let check_sites = Hashtbl.create 64 in
  let guarded_check_pcs = Hashtbl.create 16 in
  let guarded_store_pcs = Hashtbl.create 16 in
  let flag_counter = ref 0 in
  let hints = ref [] in
  (* Phase A: replace each store with a jump to its stub. *)
  let prog, per_loop =
    List.fold_left
      (fun (prog, per_loop) (((idx, instr) : int * Instr.t), kind) ->
        let _, rs, off, width = store_parts instr in
        match kind with
        | `Plain ->
            (* Store first, check after: notifications arrive once the
               write has succeeded (§2). *)
            let stub =
              [ item instr; item (Instr.Chk { base = rs; off; width });
                item (Instr.Jmp (Instr.Abs (idx + 1))) ]
            in
            let prog, s = Program.append prog stub in
            Hashtbl.replace check_sites (s + 1) idx;
            (Program.set prog idx (Instr.Jmp (Instr.Abs s)), per_loop)
        | `Hoisted l ->
            let f = !flag_counter in
            incr flag_counter;
            hints := (idx, instr) :: !hints;
            let prog, s =
              Program.append prog
                [ item instr;
                  item (Instr.Lw (Reg.k0, Reg.zero, flag_addr f));
                  item (Instr.Br (Instr.Eq, Reg.k0, Reg.zero, Instr.Abs 0));
                  item (Instr.Chk { base = rs; off; width });
                  item (Instr.Jmp (Instr.Abs (idx + 1))) ]
            in
            (* Patch the guard's skip target now that [s] is known. *)
            let prog =
              Program.set prog (s + 2)
                (Instr.Br (Instr.Eq, Reg.k0, Reg.zero, Instr.Abs (s + 4)))
            in
            Hashtbl.replace check_sites (s + 3) idx;
            Hashtbl.replace guarded_check_pcs (s + 3) ();
            Hashtbl.replace guarded_store_pcs s ();
            let prog = Program.set prog idx (Instr.Jmp (Instr.Abs s)) in
            let existing =
              Option.value ~default:[] (List.assoc_opt l.Cfg.header per_loop)
            in
            ( prog,
              (l.Cfg.header, (f, rs, off, width, l) :: existing)
              :: List.remove_assoc l.Cfg.header per_loop ))
      (orig, []) classified
  in
  (* Phase B: per optimized loop, build the preheader and redirect every
     entry edge through it. *)
  let falls_through = function
    | Instr.Jmp _ | Instr.Ret | Instr.Halt -> false
    | _ -> true
  in
  let prog =
    List.fold_left
      (fun prog (header, hoisted) ->
        let _, _, _, _, l = List.hd hoisted in
        let u = l.Cfg.back_edge in
        (* Preheader: one pre-check per hoisted store, then enter the loop. *)
        let pre_items =
          List.rev_map
            (fun (_, rs, off, width, _) -> item (Instr.Chk { base = rs; off; width }))
            hoisted
          @ [ item (Instr.Jmp (Instr.Abs header)) ]
        in
        let prog, p_branch = Program.append prog pre_items in
        List.iteri
          (fun i (f, _, _, _, _) -> Hashtbl.replace pre_check_flags (p_branch + i) f)
          (List.rev hoisted);
        (* Redirect every branch to [header] from outside the loop body and
           outside the preheader itself. *)
        let prog = ref prog in
        for i = 0 to p_branch - 1 do
          if i < header || i > u then
            match Instr.branch_target (Program.get !prog i) with
            | Some (Instr.Abs t) when t = header ->
                prog :=
                  Program.set !prog i
                    (Instr.with_target (Program.get !prog i) (Instr.Abs p_branch))
            | Some _ | None -> ()
        done;
        let prog = !prog in
        (* Fall-through entry: relocate the predecessor instruction into a
           trampoline that runs it and then takes the preheader. *)
        let pred = Program.get prog (header - 1) in
        if falls_through pred then begin
          let pred =
            match Instr.branch_target pred with
            | Some (Instr.Abs t) when t = header ->
                Instr.with_target pred (Instr.Abs p_branch)
            | Some _ | None -> pred
          in
          let prog, p_fall =
            Program.append prog [ item pred; item (Instr.Jmp (Instr.Abs p_branch)) ]
          in
          Program.set prog (header - 1) (Instr.Jmp (Instr.Abs p_fall))
        end
        else prog)
      prog per_loop
  in
  {
    prog;
    original_length;
    store_count = List.length stores;
    hoisted = !flag_counter;
    loops_optimized = List.length per_loop;
    flag_count = !flag_counter;
    pre_check_flags;
    check_sites;
    guarded_check_pcs;
    guarded_store_pcs;
    flag_ranges_hint = Array.of_list (List.rev !hints);
  }

let program p = p.prog
let patched_stores p = p.store_count
let hoisted_stores p = p.hoisted
let loops_optimized p = p.loops_optimized

let expansion p =
  float_of_int (Program.length p.prog) /. float_of_int p.original_length

let original_site p pc = Hashtbl.find_opt p.check_sites pc

type t = {
  machine : Machine.t;
  timing : Timing.t;
  map : Monitor_map.t;
  stats : Wms.stats;
  patched : patched;
  notify : Wms.notification -> unit;
  mutable pre_checks : int;
  mutable guarded_entries : int;
  mutable guarded_lookups : int;
  flag_meta : Interval.t option array;  (* last pre-checked range per flag *)
}

let set_flag t f value =
  Memory.privileged_store_word (Machine.memory t.machine) (flag_addr f)
    (if value then 1 else 0)

let on_chk t machine ~range ~pc =
  match Hashtbl.find_opt t.patched.pre_check_flags pc with
  | Some f ->
      (* Preliminary check at loop entry: evaluate once, arm or disarm the
         per-store flag. *)
      Machine.charge machine (Timing.cycles t.timing.Timing.software_lookup_us);
      t.pre_checks <- t.pre_checks + 1;
      t.flag_meta.(f) <- Some range;
      set_flag t f (Monitor_map.overlaps t.map range)
  | None ->
      Machine.charge machine (Timing.cycles t.timing.Timing.software_lookup_us);
      t.stats.Wms.lookups <- t.stats.Wms.lookups + 1;
      if Hashtbl.mem t.patched.guarded_check_pcs pc then
        t.guarded_lookups <- t.guarded_lookups + 1;
      if Monitor_map.overlaps t.map range then begin
        t.stats.Wms.hits <- t.stats.Wms.hits + 1;
        t.notify { Wms.write = range; pc }
      end

let on_store t _machine ~addr:_ ~width:_ ~value:_ ~pc ~implicit:_ =
  if Hashtbl.mem t.patched.guarded_store_pcs pc then
    t.guarded_entries <- t.guarded_entries + 1

let attach ?(timing = Timing.sparcstation2) patched machine ~notify =
  let t =
    {
      machine;
      timing;
      map = Monitor_map.create ();
      stats = Wms.fresh_stats ();
      patched;
      notify;
      pre_checks = 0;
      guarded_entries = 0;
      guarded_lookups = 0;
      flag_meta = Array.make (max 1 patched.flag_count) None;
    }
  in
  Machine.set_chk_handler machine (Some (on_chk t));
  Machine.set_store_hook machine (Some (on_store t));
  t

(* Install/remove must refresh any flag whose range was already evaluated,
   otherwise a monitor armed mid-loop would be missed (or a removed one
   would keep notifying) until the next loop entry. *)
let refresh_flags t =
  Array.iteri
    (fun f meta ->
      match meta with
      | Some range -> set_flag t f (Monitor_map.overlaps t.map range)
      | None -> ())
    t.flag_meta

let install t range =
  Machine.charge t.machine (Timing.cycles t.timing.Timing.software_update_us);
  Monitor_map.install t.map range;
  refresh_flags t;
  t.stats.Wms.installs <- t.stats.Wms.installs + 1;
  Ok ()

let remove t range =
  Machine.charge t.machine (Timing.cycles t.timing.Timing.software_update_us);
  Monitor_map.remove t.map range;
  refresh_flags t;
  t.stats.Wms.removes <- t.stats.Wms.removes + 1;
  Ok ()

let strategy t =
  {
    Wms.name = "CodePatch+hoist";
    install = install t;
    remove = remove t;
    active_monitors = (fun () -> Monitor_map.monitored_words t.map);
    extras = (fun () -> []);
  }

let stats t = t.stats
let pre_checks_executed t = t.pre_checks
let guarded_checks_skipped t = t.guarded_entries - t.guarded_lookups
