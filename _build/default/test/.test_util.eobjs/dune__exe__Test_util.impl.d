test/test_util.ml: Alcotest Array Ebp_util Float Fun Hashtbl Int List QCheck2 QCheck_alcotest String
