(** Naive interval-list monitor map: the ablation baseline.

    Stores active monitors as an unordered list of word-aligned intervals
    and answers lookups by linear scan. This is what a straightforward WMS
    might do instead of the paper's page-hash-of-bitmaps; the
    [ablation/lookup] benchmark compares the two (DESIGN.md, decision 1).

    Unlike {!Monitor_map}, removal is by exact installed range, so this
    structure is {e not} region-based; the experiment's disjoint monitors
    make the two observationally equivalent (verified by property tests). *)

type t

val create : unit -> t
val install : t -> Ebp_util.Interval.t -> unit
val remove : t -> Ebp_util.Interval.t -> (unit, string) result
(** Removes one monitor previously installed with exactly this range. *)

val overlaps : t -> Ebp_util.Interval.t -> bool
val active_monitors : t -> int
val is_empty : t -> bool
