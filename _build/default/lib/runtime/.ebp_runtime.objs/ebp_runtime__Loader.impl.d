lib/runtime/loader.ml: Allocator Buffer Char Ebp_isa Ebp_lang Ebp_machine Ebp_util List Printf Result
