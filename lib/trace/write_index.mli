(** Temporal write index over a {!Trace}: the trace preprocessed, once,
    into sorted posting lists so that phase-2 replay can count the writes
    touching a word or page inside an event-index window with binary
    searches instead of rescanning the trace per session.

    The index holds, for the trace it was built from:

    - per {e word}: the sorted event indices of every narrow (≤ 2-word)
      write touching it, plus boundary lists for writes spanning two
      adjacent words (so a session can deduplicate a write counted at both
      of its words by inclusion–exclusion over its live windows);
    - per {e page}, for each requested page size: the same two lists at
      page granularity ("touching" a page means the page is the first or
      last page of the write's range — exactly the scan engine's
      semantics);
    - per interned {e object}: its install/remove timeline (event
      position, range) so a session's live windows on any word or page
      are reconstructible without touching the trace;
    - global rare-path lists for writes covering 3+ words (or spanning
      non-adjacent pages), which the counting identities above cannot
      handle and which consumers check individually.

    The index is deeply immutable after {!build} — flat [int array]s only —
    so it can be shared unsynchronized across domains, like the trace
    itself. It also has a binary codec ({!write_binary}/{!read_binary})
    so {!Trace_cache} can persist it next to the trace. *)

type t

val build : ?pool:Ebp_util.Domain_pool.t -> page_sizes:int list -> Trace.t -> t
(** One pass over the trace, [O(events · words-per-event)]. With [pool]
    (and a trace long enough to amortize the fan-out), the pass is split
    into contiguous event chunks built on the pool's domains and merged
    by concatenating each key's per-chunk runs — event positions are
    global, so the result is structurally {e identical} to the serial
    build (asserted by [test_parallel.ml] through {!equal}).
    @raise Invalid_argument if a page size is not a positive power of
    two. *)

(** {2 Incremental (streaming) builds}

    One chunk per sealed trace block, appended while the recording runs;
    {!Incremental.snapshot} merges the sealed chunks through the same
    merge the batch build uses, so a snapshot over a recorded prefix is
    {!equal} to {!build} over that prefix trace (asserted by
    [test_stream.ml] and the fuzzer's streaming oracle). Peak state is
    one block's hash tables — O(block), not O(trace). *)

module Incremental : sig
  type builder

  val create : page_sizes:int list -> builder

  val add_block :
    builder ->
    nobjs:int ->
    count:int ->
    ((tag:int -> obj:int -> lo:int -> hi:int -> pc:int -> unit) -> unit) ->
    unit
  (** [add_block b ~nobjs ~count iter] seals one block of [count] events
      into the builder; [iter f] must call [f] once per event of the
      block, in order, with raw-event fields as in
      {!Trace.iter_raw_range}. [nobjs] is the number of objects
      registered so far (ids mentioned by the block must be below it).
      Evaluates the [stream.index_merge] fault point: an injected fault
      degrades the builder — later snapshots return [None] and consumers
      fall back to a batch build over the prefix trace. *)

  val snapshot : builder -> t option
  (** The index over everything sealed so far — structurally identical to
      {!build} on the corresponding prefix trace — or [None] once the
      builder is degraded. *)

  val events : builder -> int
  (** Events sealed so far (the snapshot's {!events}). *)

  val degraded : builder -> bool
end

(** {2 Global facts} *)

val events : t -> int
(** Number of trace events the index was built over; also the exclusive
    upper bound usable for "never removed" live windows. *)

val total_writes : t -> int

val object_count : t -> int

(** {2 Object timelines} *)

val iter_object_timeline :
  t -> int -> (ev:int -> is_install:bool -> lo:int -> hi:int -> unit) -> unit
(** [iter_object_timeline t o f] calls [f] for each install/remove event
    of object id [o], in trace order, with the event's byte range.
    @raise Invalid_argument if [o] is not a valid object id. *)

(** {2 Posting lists}

    All windows are open intervals on event indices: a count with
    [~after:a ~before:b] covers writes at positions [t] with
    [a < t < b].

    A {!posting} maps sorted keys (word or page indices) to the sorted
    event positions of the writes touching them. Consumers monitoring a
    key {e range} should iterate only the keys actually present — every
    key not in the posting was never written — via {!key_range}: *)

type posting

val word_writes : t -> posting
(** Narrow (≤ 2-word) writes, keyed by touched word; a 2-word write
    appears under both of its words. *)

val word_spans : t -> posting
(** Narrow writes spanning exactly the boundary ([w], [w + 1]), keyed by
    [w]. *)

val pc_writes : t -> posting
(** Every write — narrow and wide — keyed by its program counter. Each
    write appears exactly once (a write has one pc), so the posting's
    concatenated data is a permutation of all write positions. The query
    engine's pc predicates lower onto this. *)

val key_range : posting -> lo:int -> hi:int -> int * int
(** [key_range p ~lo ~hi] is the half-open index range [(i, j)] such that
    [key_at p k] for [i <= k < j] enumerates exactly the posting's keys
    within [[lo, hi]], in ascending order. *)

val key_at : posting -> int -> int

val key_count : posting -> int

val key_lower_bound : posting -> int -> int
(** Index of the first key [>= x] ([key_count] when none). *)

val key_upper_bound : posting -> int -> int
(** Index of the first key [> x] — {!key_range}'s upper edge, usable at
    [max_int] without overflow. *)

val count_at : posting -> int -> after:int -> before:int -> int
(** [count_at p i ~after ~before] counts the events of the [i]-th key
    inside the open window — the keyed counts below, minus the key
    search. *)

val count_within : posting -> int -> windows:int array -> int
(** [count_within p i ~windows] counts the [i]-th key's events inside any
    of [windows], a flattened [[a0; b0; a1; b1; ...]] run of sorted,
    disjoint open intervals. Equivalent to summing {!count_at} per
    window, but switches to a single linear merge when the window count
    approaches the key's event count. *)

val positions_at : posting -> int -> after:int -> before:int -> int array
(** [positions_at p i ~after ~before] materializes (a fresh copy of) the
    [i]-th key's event positions inside the open window — {!count_at}'s
    slice, extracted instead of counted. *)

val positions : posting -> int -> after:int -> before:int -> int array
(** As {!positions_at} but keyed: [positions p key ~after ~before] is
    [[||]] when [key] is absent. *)

val all_write_positions : t -> int array
(** The sorted positions of every write in the trace — the position-set
    universe negation and complements are taken against. [O(writes log
    writes)]; derived from {!pc_writes} without touching the trace. *)

(** Sorted-int-array set algebra over write positions — what boolean
    connectives compile to. All inputs must be sorted ascending; [union]
    also deduplicates (a two-word write appears under both of its word
    keys). Results are fresh arrays; inputs are never mutated. *)
module Pos_set : sig
  val empty : int array

  val union : int array list -> int array
  (** Sorted, duplicate-free union of the inputs. *)

  val inter : int array -> int array -> int array
  (** Both inputs must be duplicate-free. *)

  val diff : int array -> int array -> int array
  (** Elements of the first input not in the second; the first input
      must be duplicate-free. *)

  val within : int array -> lo:int -> hi:int -> int array
  (** The slice of values in the {e closed} interval [[lo, hi]]. *)
end

(** {2 Word-level write counts (by key)} *)

val count_word_writes : t -> word:int -> after:int -> before:int -> int
(** Narrow (≤ 2-word) writes touching [word] inside the window. A 2-word
    write is counted at both of its words. *)

val count_word_spans : t -> word:int -> after:int -> before:int -> int
(** Narrow writes spanning exactly the boundary ([word], [word + 1]). *)

val has_word_spans : t -> word:int -> bool

val iter_wide_word_writes :
  t -> (ev:int -> first:int -> last:int -> unit) -> unit
(** Writes covering 3+ words, with their word range. These are {e not} in
    {!count_word_writes}'s lists; consumers handle them individually.
    Empty for machine-recorded traces (stores are ≤ 4 bytes). *)

(** {2 Page-level write counts} *)

type page_view

val page_sizes : t -> int list

val page_view : t -> page_size:int -> page_view option

val page_shift : page_view -> int

val page_writes : page_view -> posting
(** Writes keyed by their first and last page (both, when distinct) —
    the scan engine's [page_write] touch set. *)

val page_spans : page_view -> posting
(** Writes spanning exactly the pages ([p], [p + 1]), keyed by [p]. *)

val count_page_writes : page_view -> page:int -> after:int -> before:int -> int
(** Writes whose first or last page is [page], inside the window; a write
    spanning two pages is counted at both. *)

val count_page_spans : page_view -> page:int -> after:int -> before:int -> int
(** Writes spanning exactly the pages ([page], [page + 1]). *)

val has_page_spans : page_view -> page:int -> bool

val iter_wide_page_writes :
  page_view -> (ev:int -> first:int -> last:int -> unit) -> unit
(** Writes spanning non-adjacent first/last pages. Unlike wide-word
    writes these {e are} included in {!count_page_writes} (at both
    pages); consumers subtract the double count individually. *)

(** {2 Serialization} *)

val equal : t -> t -> bool
(** Structural equality; [build] is deterministic, so an index
    round-tripped through the codec is [equal] to the original. *)

val codec_version : string
(** Codec magic ("EBPW2" — EBPW1 plus the pc posting; bump-safe cache
    keying hashes this in, so stale EBPW1 entries simply orphan). *)

val encode : t -> string
(** Serialize to the flat binary form (magic, then 8-byte LE ints and
    length-prefixed arrays). {!Trace_cache} seals exactly these bytes
    under its CRC trailer. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}. Hardened against adversarial input: every
    length is clamped against the bytes actually present, posting/object
    offsets are validated, trailing bytes are rejected, and no input
    makes it raise (it returns [Error _]). Evaluates the
    [write_index.codec.decode] fault point. *)

val write_binary : out_channel -> t -> unit
(** [output_string oc (encode t)]. *)

val read_binary : in_channel -> (t, string) result
(** [decode] of the channel's remaining contents (reads to EOF). *)
