lib/runtime/allocator.ml: Ebp_lang Hashtbl Int List Printf
