(** The five benchmark programs (paper §6), as MiniC sources.

    Each stands in for one of the paper's C programs, engineered to
    reproduce that program's memory-behaviour shape rather than its
    function (see DESIGN.md §2):

    - [compiler] ~ GCC: scanning + recursive tree building, heap-heavy with
      many globals;
    - [typeset] ~ CommonTeX: dynamic-programming line breaking over static
      arrays — {e no heap objects}, so no heap sessions exist (Table 1);
    - [circuit] ~ Spice: iterative Gauss–Seidel nodal analysis with
      heap-allocated matrices;
    - [lattice] ~ QCD: stencil sweeps over global lattices with tiny helper
      functions — the most writes and monitor installs, no heap;
    - [puzzle] ~ BPS: best-first 8-puzzle search allocating thousands of
      small heap nodes — dominating the OneHeap session count.

    [expected_output] lets tests pin each workload's observable behaviour:
    the programs self-check (e.g. print a checksum) so a compiler or
    machine regression is caught by the workload suite itself. *)

type t = {
  name : string;
  description : string;
  paper_analogue : string;  (** the paper program this one stands in for *)
  source : string;  (** MiniC translation unit *)
  seed : int;  (** PRNG seed for the [rand] builtin *)
  expected_output : string option;
      (** full expected stdout, when deterministic (always, currently) *)
  event_hint : int option;
      (** approximate phase-1 trace event count, used to pre-size the
          recorder's trace builder so recording neither reallocates nor
          copies on finish; purely a performance hint *)
}

val all : t list
(** In the paper's Table 1 order: compiler, typeset, circuit, lattice,
    puzzle. *)

val by_name : string -> t option

val compiler : t
val typeset : t
val circuit : t
val lattice : t
val puzzle : t

(** A compiled-and-traced workload, ready for phase 2. *)
type run = {
  workload : t;
  compiled : Ebp_lang.Compiler.output;
  result : Ebp_runtime.Loader.run_result option;
      (** the machine run that produced the trace; [None] when the trace
          came from the on-disk cache and no machine execution happened *)
  trace : Ebp_trace.Trace.t;
  base_ms : float;  (** base execution time at the simulated clock *)
}

val record : ?fuel:int -> t -> (run, string) result
(** Compile, load, run under the trace recorder. Fails on compile errors,
    machine errors, runtime errors, or an output mismatch. The [result]
    field of a successful recording is always [Some _]. *)

val cache_key : ?fuel:int -> t -> string
(** The {!Ebp_trace.Trace_cache} key of this workload's phase-1 trace:
    name, source digest, seed, and fuel, hashed per the cache's key
    scheme. Deterministic recording makes these inputs a complete
    description of the trace. *)

val record_cached : ?fuel:int -> cache_dir:string -> t -> (run, string) result
(** Like {!record}, but consults the trace cache under [cache_dir] first.
    On a hit the machine never runs: the trace and base execution time are
    loaded from disk and [result] is [None]. On a miss, records normally
    and then stores the trace (best-effort — a read-only cache directory
    degrades to plain {!record}). *)
