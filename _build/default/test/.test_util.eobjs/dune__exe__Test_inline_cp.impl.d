test/test_inline_cp.ml: Alcotest Ebp_core Ebp_isa Ebp_machine Ebp_runtime Ebp_util Ebp_wms Fun List Printf QCheck2 QCheck_alcotest Result
