(* Tests for Ebp_wms: the monitor maps, instrumentation passes, and the
   four live strategies driven on hand-written assembly. *)

module Interval = Ebp_util.Interval
module Prng = Ebp_util.Prng
module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory
module Reg = Ebp_isa.Reg
module Instr = Ebp_isa.Instr
module Program = Ebp_isa.Program
module Timing = Ebp_wms.Timing
module Monitor_map = Ebp_wms.Monitor_map
module Reference_map = Ebp_wms.Reference_map
module Interval_map = Ebp_wms.Interval_map
module Wms = Ebp_wms.Wms

let iv lo hi = Interval.make ~lo ~hi

let assemble src =
  match Ebp_isa.Asm.parse_resolved src with
  | Ok p -> p
  | Error e -> Alcotest.failf "assembly error: %s" e

(* --- Monitor_map --- *)

let test_map_basic () =
  let m = Monitor_map.create () in
  Alcotest.(check bool) "empty" true (Monitor_map.is_empty m);
  Monitor_map.install m (iv 0x1000 0x100f);
  Alcotest.(check bool) "hit inside" true (Monitor_map.overlaps m (iv 0x1004 0x1007));
  Alcotest.(check bool) "miss outside" false (Monitor_map.overlaps m (iv 0x1010 0x1013));
  Alcotest.(check int) "4 words" 4 (Monitor_map.monitored_words m);
  Monitor_map.remove m (iv 0x1000 0x100f);
  Alcotest.(check bool) "empty after remove" true (Monitor_map.is_empty m)

let test_map_word_alignment () =
  (* Footnote 7: monitors are word-aligned, so a 1-byte monitor covers its
     whole word, and a write to any byte of that word hits. *)
  let m = Monitor_map.create () in
  Monitor_map.install m (iv 0x1001 0x1001);
  Alcotest.(check bool) "same word other byte" true
    (Monitor_map.overlaps m (iv 0x1003 0x1003));
  Alcotest.(check bool) "next word" false (Monitor_map.overlaps m (iv 0x1004 0x1004))

let test_map_cross_page () =
  let m = Monitor_map.create ~page_size:4096 () in
  Monitor_map.install m (iv 4090 4100);
  Alcotest.(check int) "two active pages" 2 (Monitor_map.active_pages m);
  Alcotest.(check bool) "page 0 active" true (Monitor_map.page_is_active m 0);
  Alcotest.(check bool) "page 1 active" true (Monitor_map.page_is_active m 1);
  Alcotest.(check bool) "low side hit" true (Monitor_map.overlaps m (iv 4088 4091));
  Alcotest.(check bool) "high side hit" true (Monitor_map.overlaps m (iv 4100 4103));
  Monitor_map.remove m (iv 4090 4100);
  Alcotest.(check int) "pages drop to zero" 0 (Monitor_map.active_pages m)

let test_map_page_size_validation () =
  Alcotest.(check bool) "page size 2 rejected" true
    (match Monitor_map.create ~page_size:2 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let random_ops_gen =
  QCheck2.Gen.(
    list_size (int_range 1 120)
      (triple (int_range 0 2) (int_range 0 2000) (int_range 0 48)))

let ops_to_ranges ops =
  List.map
    (fun (kind, word, len) ->
      let lo = word * 4 in
      (kind, iv lo (lo + len)))
    ops

let prop_map_matches_reference =
  QCheck2.Test.make ~name:"monitor map matches hash-set reference" ~count:200
    random_ops_gen
    (fun ops ->
      let m = Monitor_map.create ~page_size:256 () in
      let r = Reference_map.create () in
      List.for_all
        (fun (kind, range) ->
          match kind with
          | 0 ->
              Monitor_map.install m range;
              Reference_map.install r range;
              true
          | 1 ->
              Monitor_map.remove m range;
              Reference_map.remove r range;
              true
          | _ ->
              Monitor_map.overlaps m range = Reference_map.overlaps r range
              && Monitor_map.monitored_words m = Reference_map.monitored_words r)
        (ops_to_ranges ops))

(* Interval_map (ablation baseline) agrees with the reference as long as
   installed monitors are disjoint and removal is by installed range. *)
let prop_interval_map_agrees =
  QCheck2.Test.make ~name:"interval map agrees on disjoint monitors" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 30) (list_size (int_range 1 60) (int_range 0 4000)))
    (fun (nmonitors, probes) ->
      let m = Monitor_map.create () in
      let l = Interval_map.create () in
      (* Disjoint word-aligned monitors: monitor k covers words 4k..4k+1. *)
      for k = 0 to nmonitors - 1 do
        let lo = k * 16 in
        let range = iv lo (lo + 7) in
        Monitor_map.install m range;
        Interval_map.install l range
      done;
      List.for_all
        (fun addr ->
          let probe = iv addr (addr + 3) in
          Monitor_map.overlaps m probe = Interval_map.overlaps l probe)
        probes)

let test_interval_map_remove () =
  let l = Interval_map.create () in
  Interval_map.install l (iv 0 7);
  Interval_map.install l (iv 16 23);
  (match Interval_map.remove l (iv 0 7) with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one left" 1 (Interval_map.active_monitors l);
  match Interval_map.remove l (iv 0 7) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "removed a non-installed range"

(* --- instrumentation passes --- *)

let store_heavy_src =
  {|
  li t1, 8192
  li t0, 1
  sw t0, 0(t1)
  !sw t0, 4(t1)    ; implicit: must not be patched
  sb t0, 8(t1)
  lw t2, 0(t1)
  halt
|}

let test_trap_patch_instrument () =
  let p = assemble store_heavy_src in
  let patched = Ebp_wms.Trap_patch.instrument p in
  Alcotest.(check int) "two stores patched" 2
    (Ebp_wms.Trap_patch.patched_stores patched);
  let p' = Ebp_wms.Trap_patch.program patched in
  Alcotest.(check int) "length unchanged" (Program.length p) (Program.length p');
  (match Program.get p' 2 with
  | Instr.Trap 2 -> ()
  | i -> Alcotest.failf "expected trap at 2, got %s" (Instr.to_string i));
  match Program.get p' 3 with
  | Instr.Sw _ -> () (* implicit store left alone *)
  | i -> Alcotest.failf "implicit store was patched: %s" (Instr.to_string i)

let test_code_patch_instrument () =
  let p = assemble store_heavy_src in
  let patched = Ebp_wms.Code_patch.instrument p in
  Alcotest.(check int) "two stores patched" 2
    (Ebp_wms.Code_patch.patched_stores patched);
  let p' = Ebp_wms.Code_patch.program patched in
  Alcotest.(check int) "3 extra instrs per store" (Program.length p + 6)
    (Program.length p');
  (* The patched site jumps to a stub: store, then check, then jump back
     (notify-after-write, paper §2). *)
  (match Program.get p' 2 with
  | Instr.Jmp (Instr.Abs stub) -> (
      (match Program.get p' stub with
      | Instr.Sw _ -> ()
      | i -> Alcotest.failf "stub starts with %s" (Instr.to_string i));
      (match Program.get p' (stub + 1) with
      | Instr.Chk { width = 4; _ } -> ()
      | i -> Alcotest.failf "stub check is %s" (Instr.to_string i));
      match Program.get p' (stub + 2) with
      | Instr.Jmp (Instr.Abs 3) -> ()
      | i -> Alcotest.failf "stub return is %s" (Instr.to_string i))
  | i -> Alcotest.failf "site not patched: %s" (Instr.to_string i));
  Alcotest.(check bool) "expansion reported" true
    (Ebp_wms.Code_patch.expansion patched > 1.0)

let test_code_patch_preserves_semantics () =
  (* A memcpy-ish loop must compute the same result patched or not. *)
  let src =
    {|
  li t1, 8192     ; src
  li t2, 12288    ; dst
  li t3, 0        ; i
  li t4, 10
init:
  beq t3, t4, copy
  mul t5, t3, t3
  slli t6, t3, 2
  add t6, t1, t6
  sw t5, 0(t6)
  addi t3, t3, 1
  jmp init
copy:
  li t3, 0
loop:
  beq t3, t4, done
  slli t6, t3, 2
  add t5, t1, t6
  lw t5, 0(t5)
  add t6, t2, t6
  sw t5, 0(t6)
  addi t3, t3, 1
  jmp loop
done:
  lw v0, 36(t2)   ; dst[9] = 81
  halt
|}
  in
  let p = assemble src in
  let run_program prog =
    let m = Machine.create prog in
    Machine.set_chk_handler m (Some (fun _ ~range:_ ~pc:_ -> ()));
    match Machine.run m with
    | Machine.Halted v -> v
    | _ -> Alcotest.fail "did not halt"
  in
  let plain = run_program p in
  let patched = run_program (Ebp_wms.Code_patch.program (Ebp_wms.Code_patch.instrument p)) in
  Alcotest.(check int) "same result" plain patched;
  Alcotest.(check int) "expected value" 81 plain

let test_expansion_estimate () =
  let p = assemble store_heavy_src in
  let e = Ebp_wms.Code_patch.expansion_of_program p in
  (* 7 instructions, 2 explicit stores -> (7 + 6) / 7 *)
  Alcotest.(check (float 1e-9)) "formula" (13.0 /. 7.0) e

(* --- live strategies on a common scenario --- *)

(* Writes a loop over two arrays; we monitor one of them. *)
let scenario_src =
  {|
  li t1, 8192     ; monitored array
  li t2, 16384    ; unmonitored array
  li t3, 0
loop:
  slli t6, t3, 2
  add t5, t1, t6
  sw t3, 0(t5)
  add t5, t2, t6
  sw t3, 0(t5)
  addi t3, t3, 1
  blt t3, zero, loop   ; never taken twice; keep it simple
  li t4, 5
  beq t3, t4, done
  jmp loop
done:
  halt
|}

let monitored = iv 8192 (8192 + 19) (* the five words written *)

let run_strategy kind =
  let p = assemble scenario_src in
  let hits = ref [] in
  let notify (n : Wms.notification) = hits := (Interval.lo n.Wms.write, n.Wms.pc) :: !hits in
  let finish machine strategy =
    (match strategy.Wms.install monitored with
    | Ok () -> ()
    | Error e -> Alcotest.fail e);
    (match Machine.run machine with
    | Machine.Halted _ -> ()
    | Machine.Out_of_fuel -> Alcotest.fail "fuel"
    | Machine.Machine_error m -> Alcotest.fail m);
    (machine, strategy, List.rev !hits)
  in
  match kind with
  | `NH ->
      let m = Machine.create p in
      let t = Ebp_wms.Native_hardware.attach m ~notify in
      finish m (Ebp_wms.Native_hardware.strategy t)
  | `VM ->
      let m = Machine.create p in
      let t = Ebp_wms.Virtual_memory.attach m ~notify in
      finish m (Ebp_wms.Virtual_memory.strategy t)
  | `TP ->
      let patched = Ebp_wms.Trap_patch.instrument p in
      let m = Machine.create (Ebp_wms.Trap_patch.program patched) in
      let t = Ebp_wms.Trap_patch.attach patched m ~notify in
      finish m (Ebp_wms.Trap_patch.strategy t)
  | `CP ->
      let patched = Ebp_wms.Code_patch.instrument p in
      let m = Machine.create (Ebp_wms.Code_patch.program patched) in
      let t = Ebp_wms.Code_patch.attach patched m ~notify in
      finish m (Ebp_wms.Code_patch.strategy t)
  | `VB ->
      let m = Machine.create p in
      let t = Ebp_wms.Virtual_breakpoint.attach m ~notify in
      finish m (Ebp_wms.Virtual_breakpoint.strategy t)

let expected_hit_addrs = [ 8192; 8196; 8200; 8204; 8208 ]

let test_all_strategies_agree_on_hits () =
  let results =
    List.map (fun k -> run_strategy k) [ `NH; `VM; `TP; `CP; `VB ]
  in
  List.iter
    (fun (_, strategy, hits) ->
      Alcotest.(check (list int))
        (strategy.Wms.name ^ " hit addresses")
        expected_hit_addrs (List.map fst hits))
    results

let test_memory_state_identical_across_strategies () =
  let results = List.map (fun k -> run_strategy k) [ `NH; `VM; `TP; `CP; `VB ] in
  let dump (machine, _, _) =
    List.init 5 (fun i -> Memory.load_word (Machine.memory machine) (8192 + (4 * i)))
    @ List.init 5 (fun i -> Memory.load_word (Machine.memory machine) (16384 + (4 * i)))
  in
  let reference = dump (List.hd results) in
  Alcotest.(check (list int)) "expected contents" [ 0; 1; 2; 3; 4; 0; 1; 2; 3; 4 ]
    reference;
  List.iter
    (fun ((_, strategy, _) as r) ->
      Alcotest.(check (list int)) (strategy.Wms.name ^ " memory") reference (dump r))
    (List.tl results)

let test_strategy_costs_ordering () =
  (* With Table 2 timing, per-write costs order CP < NH < TP < VM here
     (VM pays for misses on the monitored page; NH pays only hits). *)
  let cycles_of k =
    let machine, _, _ = run_strategy k in
    Machine.cycles machine
  in
  let nh = cycles_of `NH and vm = cycles_of `VM and tp = cycles_of `TP and cp = cycles_of `CP in
  Alcotest.(check bool) "cp cheapest" true (cp < nh && cp < tp && cp < vm);
  Alcotest.(check bool) "tp > nh" true (tp > nh);
  (* VB takes the same faults as VM but each one is much cheaper — no
     guest trap + signal dispatch, just an exit and a view switch. *)
  let vb = cycles_of `VB in
  Alcotest.(check bool) "vb < vm" true (vb < vm)

let test_nh_capacity () =
  let p = assemble "  halt\n" in
  let m = Machine.create ~monitor_reg_count:2 p in
  let t = Ebp_wms.Native_hardware.attach m ~notify:(fun _ -> ()) in
  let s = Ebp_wms.Native_hardware.strategy t in
  Alcotest.(check bool) "1" true (Result.is_ok (s.Wms.install (iv 0 3)));
  Alcotest.(check bool) "2" true (Result.is_ok (s.Wms.install (iv 8 11)));
  Alcotest.(check bool) "3 fails" true (Result.is_error (s.Wms.install (iv 16 19)));
  Alcotest.(check int) "active" 2 (s.Wms.active_monitors ());
  Alcotest.(check bool) "remove frees a register" true
    (Result.is_ok (s.Wms.remove (iv 0 3)));
  Alcotest.(check bool) "reinstall works" true (Result.is_ok (s.Wms.install (iv 16 19)));
  Alcotest.(check bool) "remove unknown fails" true
    (Result.is_error (s.Wms.remove (iv 999996 999999)))

let test_vm_protection_lifecycle () =
  let p = assemble "  halt\n" in
  let m = Machine.create p in
  let mem = Machine.memory m in
  let t = Ebp_wms.Virtual_memory.attach m ~notify:(fun _ -> ()) in
  let s = Ebp_wms.Virtual_memory.strategy t in
  let r1 = iv 8192 8195 and r2 = iv 8200 8203 in
  ignore (s.Wms.install r1);
  Alcotest.(check bool) "page protected" true
    (Memory.protection mem ~page:(Memory.page_of mem 8192) = Memory.Read_only);
  ignore (s.Wms.install r2);
  ignore (s.Wms.remove r1);
  Alcotest.(check bool) "still protected while r2 lives" true
    (Memory.protection mem ~page:(Memory.page_of mem 8192) = Memory.Read_only);
  ignore (s.Wms.remove r2);
  Alcotest.(check bool) "unprotected when last monitor goes" true
    (Memory.protection mem ~page:(Memory.page_of mem 8192) = Memory.Read_write)

let test_vm_page_miss_counted () =
  (* A store to the protected page that misses the monitor still faults. *)
  let src = "  li t1, 8192\n  li t0, 7\n  sw t0, 64(t1)\n  halt\n" in
  let m = Machine.create (assemble src) in
  let t = Ebp_wms.Virtual_memory.attach m ~notify:(fun _ -> Alcotest.fail "no hit expected") in
  let s = Ebp_wms.Virtual_memory.strategy t in
  ignore (s.Wms.install (iv 8192 8195));
  (match Machine.run m with Machine.Halted _ -> () | _ -> Alcotest.fail "run");
  Alcotest.(check int) "page miss fault" 1 (Ebp_wms.Virtual_memory.page_miss_faults t);
  Alcotest.(check int) "write emulated" 7 (Memory.load_word (Machine.memory m) 8256)

let test_vb_view_lifecycle () =
  let p = assemble "  halt\n" in
  let m = Machine.create p in
  let mem = Machine.memory m in
  let t = Ebp_wms.Virtual_breakpoint.attach m ~notify:(fun _ -> ()) in
  let s = Ebp_wms.Virtual_breakpoint.strategy t in
  let r1 = iv 8192 8195 and r2 = iv 8200 8203 in
  ignore (s.Wms.install r1);
  let page = Memory.page_of mem 8192 in
  Alcotest.(check bool) "data view write-protected" true
    (Memory.view_protection mem ~page = Memory.Read_only);
  (* The whole point of VB: the guest-visible protection never moves. *)
  Alcotest.(check bool) "guest protection untouched" true
    (Memory.protection mem ~page = Memory.Read_write);
  ignore (s.Wms.install r2);
  ignore (s.Wms.remove r1);
  Alcotest.(check bool) "view held while r2 lives" true
    (Memory.view_protection mem ~page = Memory.Read_only);
  ignore (s.Wms.remove r2);
  Alcotest.(check bool) "view restored when last monitor goes" true
    (Memory.view_protection mem ~page = Memory.Read_write);
  Alcotest.(check int) "no view-protected pages left" 0
    (Memory.view_protected_page_count mem)

let test_vb_view_miss_emulated () =
  (* A store into the protected view that misses the monitor set still
     exits, but resolves against the data view without notifying. *)
  let src = "  li t1, 8192\n  li t0, 7\n  sw t0, 64(t1)\n  halt\n" in
  let m = Machine.create (assemble src) in
  let t =
    Ebp_wms.Virtual_breakpoint.attach m ~notify:(fun _ ->
        Alcotest.fail "no hit expected")
  in
  let s = Ebp_wms.Virtual_breakpoint.strategy t in
  ignore (s.Wms.install (iv 8192 8195));
  (match Machine.run m with Machine.Halted _ -> () | _ -> Alcotest.fail "run");
  Alcotest.(check int) "view miss fault" 1
    (Ebp_wms.Virtual_breakpoint.view_miss_faults t);
  Alcotest.(check int) "store emulated" 7 (Memory.load_word (Machine.memory m) 8256)

let test_strategy_extras () =
  (* Auxiliary counters are exposed uniformly through [Wms.extras]; the
     fault-driven strategies publish theirs, the rest stay empty. *)
  let results = List.map (fun k -> run_strategy k) [ `NH; `VM; `TP; `CP; `VB ] in
  List.iter
    (fun (_, strategy, _) ->
      let extras = strategy.Wms.extras () in
      match strategy.Wms.name with
      | "VirtualMemory" ->
          Alcotest.(check (list (pair string int))) "VM extras"
            [ ("page_miss_faults", 0) ] extras
      | "VirtualBreakpoint" ->
          Alcotest.(check (list (pair string int))) "VB extras"
            [ ("view_switch_faults", 5); ("view_miss_faults", 0) ] extras
      | name ->
          Alcotest.(check int) (name ^ " has no extras") 0 (List.length extras))
    results

let test_timing_charges () =
  (* One monitored store under CP charges exactly one SoftwareLookup. *)
  let p = assemble "  li t1, 8192\n  li t0, 1\n  sw t0, 0(t1)\n  halt\n" in
  let patched = Ebp_wms.Code_patch.instrument p in
  let m = Machine.create (Ebp_wms.Code_patch.program patched) in
  let t = Ebp_wms.Code_patch.attach patched m ~notify:(fun _ -> ()) in
  let s = Ebp_wms.Code_patch.strategy t in
  let before = Machine.cycles m in
  ignore (s.Wms.install (iv 8192 8195));
  let install_cost = Machine.cycles m - before in
  Alcotest.(check int) "install charges SoftwareUpdate" (Timing.cycles 22.0) install_cost;
  (match Machine.run m with Machine.Halted _ -> () | _ -> Alcotest.fail "run");
  let stats = Ebp_wms.Code_patch.stats t in
  Alcotest.(check int) "one lookup" 1 stats.Wms.lookups;
  Alcotest.(check int) "one hit" 1 stats.Wms.hits

let test_timing_defaults () =
  let t = Timing.sparcstation2 in
  Alcotest.(check (float 1e-9)) "lookup" 2.75 t.Timing.software_lookup_us;
  Alcotest.(check (float 1e-9)) "vm fault" 561.0 t.Timing.vm_fault_handler_us;
  Alcotest.(check int) "2.75us at 40MHz" 110 (Timing.cycles 2.75)



(* --- Write_barrier: the "other" service of §2 --- *)

module Barrier = Ebp_wms.Write_barrier

let barrier_scenario =
  {|
  li t1, 8192
  li t0, 11
  sw t0, 0(t1)      ; guarded: consult the client
  sw t0, 64(t1)     ; same page, unguarded: bystander, always allowed
  li t0, 22
  sw t0, 4(t1)      ; guarded again
  halt
|}

let run_barrier ~decide =
  let p = assemble barrier_scenario in
  let m = Machine.create p in
  let b = Barrier.attach m ~decide in
  (match Barrier.guard b (iv 8192 8199) with Ok () -> () | Error e -> Alcotest.fail e);
  (match Machine.run m with Machine.Halted _ -> () | _ -> Alcotest.fail "run");
  (m, b)

let test_barrier_deny_suppresses_write () =
  let m, b = run_barrier ~decide:(fun _ -> Barrier.Deny) in
  let mem = Machine.memory m in
  Alcotest.(check int) "denied count" 2 (Barrier.denied b);
  Alcotest.(check int) "bystander count" 1 (Barrier.bystanders b);
  Alcotest.(check int) "guarded word untouched" 0 (Memory.load_word mem 8192);
  Alcotest.(check int) "second guarded word untouched" 0 (Memory.load_word mem 8196);
  Alcotest.(check int) "bystander write landed" 11 (Memory.load_word mem 8256)

let test_barrier_allow_lets_write_through () =
  let m, b = run_barrier ~decide:(fun _ -> Barrier.Allow) in
  let mem = Machine.memory m in
  Alcotest.(check int) "allowed count" 2 (Barrier.allowed b);
  Alcotest.(check int) "write landed" 11 (Memory.load_word mem 8192);
  Alcotest.(check int) "second write landed" 22 (Memory.load_word mem 8196)

let test_barrier_selective_verdicts () =
  let m, b =
    run_barrier ~decide:(fun a ->
        (* Allow only the value-22 store. *)
        if a.Barrier.value = 22 then Barrier.Allow else Barrier.Deny)
  in
  let mem = Machine.memory m in
  Alcotest.(check int) "one denied" 1 (Barrier.denied b);
  Alcotest.(check int) "one allowed" 1 (Barrier.allowed b);
  Alcotest.(check int) "vetoed word clear" 0 (Memory.load_word mem 8192);
  Alcotest.(check int) "permitted word set" 22 (Memory.load_word mem 8196)

let test_barrier_unguard () =
  let p = assemble "  li t1, 8192\n  li t0, 5\n  sw t0, 0(t1)\n  halt\n" in
  let m = Machine.create p in
  let consulted = ref 0 in
  let b = Barrier.attach m ~decide:(fun _ -> incr consulted; Barrier.Deny) in
  ignore (Barrier.guard b (iv 8192 8195));
  ignore (Barrier.unguard b (iv 8192 8195));
  (match Machine.run m with Machine.Halted _ -> () | _ -> Alcotest.fail "run");
  Alcotest.(check int) "client never consulted" 0 !consulted;
  Alcotest.(check int) "write landed without faulting" 5
    (Memory.load_word (Machine.memory m) 8192)

(* --- Access_code_patch: read + write monitoring --- *)

module Acp = Ebp_wms.Access_code_patch

let access_scenario =
  {|
  li t1, 8192
  li t0, 7
  sw t0, 0(t1)     ; write to the watched word
  lw t2, 0(t1)     ; read it back
  lw t3, 64(t1)    ; read elsewhere
  sw t0, 64(t1)    ; write elsewhere
  !sw t0, 128(t1)  ; implicit: not instrumented
  halt
|}

let attach_access () =
  let p = assemble access_scenario in
  let patched = Acp.instrument p in
  let m = Machine.create (Acp.program patched) in
  let events = ref [] in
  let t = Acp.attach patched m ~notify:(fun n -> events := n :: !events) in
  (patched, m, t, events)

let test_access_instrument_counts () =
  let p = assemble access_scenario in
  let patched = Acp.instrument p in
  Alcotest.(check int) "explicit stores" 2 (Acp.patched_stores patched);
  Alcotest.(check int) "loads" 2 (Acp.patched_loads patched);
  Alcotest.(check bool) "expansion" true (Acp.expansion patched > 1.0)

let test_access_read_and_write_hits () =
  let patched, m, t, events = attach_access () in
  ignore patched;
  (match Acp.install t ~on:`Both (iv 8192 8195) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Machine.run m with Machine.Halted _ -> () | _ -> Alcotest.fail "run");
  Alcotest.(check int) "one write hit" 1 (Acp.write_hits t);
  Alcotest.(check int) "one read hit" 1 (Acp.read_hits t);
  match List.rev !events with
  | [ { Acp.access = Acp.Write; pc = 2; _ }; { Acp.access = Acp.Read; pc = 3; _ } ] -> ()
  | _ -> Alcotest.fail "unexpected event sequence"

let test_access_independent_maps () =
  let _, m, t, _ = attach_access () in
  (* Read-only watch: the write to the same word must NOT notify. *)
  ignore (Acp.install t ~on:`Read (iv 8192 8195));
  (match Machine.run m with Machine.Halted _ -> () | _ -> Alcotest.fail "run");
  Alcotest.(check int) "no write hits" 0 (Acp.write_hits t);
  Alcotest.(check int) "one read hit" 1 (Acp.read_hits t)

let test_access_remove () =
  let _, m, t, _ = attach_access () in
  ignore (Acp.install t ~on:`Both (iv 8192 8195));
  ignore (Acp.remove t ~on:`Read (iv 8192 8195));
  (match Machine.run m with Machine.Halted _ -> () | _ -> Alcotest.fail "run");
  Alcotest.(check int) "write watch survives" 1 (Acp.write_hits t);
  Alcotest.(check int) "read watch removed" 0 (Acp.read_hits t)

let test_access_load_clobbering_base () =
  (* lw t1, 0(t1): the check must run before the load destroys the base. *)
  let src = "  li t1, 8192\n  li t0, 12288\n  sw t0, 0(t1)\n  lw t1, 0(t1)\n  lw v0, 0(t1)\n  halt\n" in
  let p = assemble src in
  let patched = Acp.instrument p in
  let m = Machine.create (Acp.program patched) in
  let reads = ref [] in
  let t =
    Acp.attach patched m ~notify:(fun n ->
        if n.Acp.access = Acp.Read then reads := Interval.lo n.Acp.range :: !reads)
  in
  ignore (Acp.install t ~on:`Read (iv 8192 8195));
  (match Machine.run m with
  | Machine.Halted _ -> ()
  | _ -> Alcotest.fail "run failed");
  (* The first load reads 8192 (hit); it then points t1 at 12288, whose
     read misses. Program semantics must survive instrumenting both. *)
  Alcotest.(check (list int)) "read hit on the aliased load" [ 8192 ] !reads;
  Alcotest.(check int) "program result intact" 0
    (Memory.load_word (Machine.memory m) 12288)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "wms"
    [
      ( "monitor map",
        [
          Alcotest.test_case "basic" `Quick test_map_basic;
          Alcotest.test_case "word alignment" `Quick test_map_word_alignment;
          Alcotest.test_case "cross page" `Quick test_map_cross_page;
          Alcotest.test_case "page size validation" `Quick test_map_page_size_validation;
          q prop_map_matches_reference;
          q prop_interval_map_agrees;
          Alcotest.test_case "interval map remove" `Quick test_interval_map_remove;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "trap patch" `Quick test_trap_patch_instrument;
          Alcotest.test_case "code patch" `Quick test_code_patch_instrument;
          Alcotest.test_case "code patch semantics" `Quick
            test_code_patch_preserves_semantics;
          Alcotest.test_case "expansion estimate" `Quick test_expansion_estimate;
        ] );
      ( "write barrier",
        [
          Alcotest.test_case "deny suppresses" `Quick test_barrier_deny_suppresses_write;
          Alcotest.test_case "allow passes" `Quick test_barrier_allow_lets_write_through;
          Alcotest.test_case "selective verdicts" `Quick test_barrier_selective_verdicts;
          Alcotest.test_case "unguard" `Quick test_barrier_unguard;
        ] );
      ( "access monitoring",
        [
          Alcotest.test_case "instrument counts" `Quick test_access_instrument_counts;
          Alcotest.test_case "read and write hits" `Quick
            test_access_read_and_write_hits;
          Alcotest.test_case "independent maps" `Quick test_access_independent_maps;
          Alcotest.test_case "remove" `Quick test_access_remove;
          Alcotest.test_case "base-clobbering load" `Quick
            test_access_load_clobbering_base;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "hits agree" `Quick test_all_strategies_agree_on_hits;
          Alcotest.test_case "memory identical" `Quick
            test_memory_state_identical_across_strategies;
          Alcotest.test_case "cost ordering" `Quick test_strategy_costs_ordering;
          Alcotest.test_case "NH capacity" `Quick test_nh_capacity;
          Alcotest.test_case "VM protection lifecycle" `Quick
            test_vm_protection_lifecycle;
          Alcotest.test_case "VM page miss" `Quick test_vm_page_miss_counted;
          Alcotest.test_case "VB view lifecycle" `Quick test_vb_view_lifecycle;
          Alcotest.test_case "VB view miss" `Quick test_vb_view_miss_emulated;
          Alcotest.test_case "extras" `Quick test_strategy_extras;
          Alcotest.test_case "timing charges" `Quick test_timing_charges;
          Alcotest.test_case "timing defaults" `Quick test_timing_defaults;
        ] );
    ]
