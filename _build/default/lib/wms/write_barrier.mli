(** Write barriers via page protection — the {e other} service §2 takes
    care to distinguish from write monitors: "The notification may occur
    after the write has succeeded, distinguishing write monitors from
    write barriers."

    A barrier consults its client {e before} the write lands and may veto
    it. This is what Sullivan & Stonebraker's write-protected database
    structures do ([SS91], cited by §3.2 among the virtual-memory
    approaches): committed data lives on protected pages, and only writes
    the guard recognizes as legitimate are allowed through.

    Built on the same machinery as {!Virtual_memory}: guarded ranges
    write-protect their pages; the write-fault handler asks the client for
    a verdict, then either emulates the store (allow) or drops it (deny) —
    either way execution continues after the faulting instruction. Writes
    to a protected page {e outside} any guarded range are always allowed
    (the false-sharing cost, as for the VM monitor strategy). Each fault
    charges [VMFaultHandler] + [SoftwareLookup]. *)

type verdict = Allow | Deny

type attempt = {
  write : Ebp_util.Interval.t;  (** the range the store would modify *)
  value : int;  (** the value it would store *)
  pc : int;
  guarded : bool;  (** whether the target intersects a guarded range *)
}

type t

val attach :
  ?timing:Timing.t ->
  Ebp_machine.Machine.t ->
  decide:(attempt -> verdict) ->
  t
(** Takes over the machine's write-fault handler. [decide] is only called
    for attempts on guarded ranges; unguarded same-page writes are allowed
    without consultation. *)

val guard : t -> Ebp_util.Interval.t -> (unit, string) result
(** Protect a range: subsequent stores into it go through [decide]. *)

val unguard : t -> Ebp_util.Interval.t -> (unit, string) result

val allowed : t -> int
(** Guarded writes the client permitted. *)

val denied : t -> int
(** Guarded writes the client vetoed — the store never happened. *)

val bystanders : t -> int
(** Unguarded writes that faulted only because they shared a page. *)
