(* Entry layout: magic, 8-byte LE meta length, meta bytes, then the trace
   in the Trace binary codec, which must be the file's final payload
   (Trace.read_binary consumes to EOF). The version string below is
   hashed into every key and includes the trace codec version, so a codec
   change silently orphans old entries instead of misreading them. *)

let version = "ebp-trace-cache-v2:" ^ Trace.codec_version
let magic = "EBPC2"

module Metrics = Ebp_obs.Metrics
module Span = Ebp_obs.Span

(* Cache observability: hit/miss counters and latency histograms for both
   entry kinds, byte traffic, and what garbage collection reclaimed. All
   updates are no-ops (one branch) until Metrics.set_enabled. *)
let m_hits = Metrics.counter "trace_cache.hits"
let m_misses = Metrics.counter "trace_cache.misses"
let m_index_hits = Metrics.counter "trace_cache.index_hits"
let m_index_misses = Metrics.counter "trace_cache.index_misses"
let m_bytes_read = Metrics.counter "trace_cache.bytes_read"
let m_bytes_written = Metrics.counter "trace_cache.bytes_written"
let m_lookup_ns = Metrics.histogram "trace_cache.lookup_ns"
let m_store_ns = Metrics.histogram "trace_cache.store_ns"
let m_gc_removed = Metrics.counter "trace_cache.gc_removed"
let m_gc_reclaimed = Metrics.counter "trace_cache.gc_reclaimed_bytes"
let g_disk_bytes = Metrics.gauge "trace_cache.disk_bytes"

let timed hist f =
  if not (Metrics.is_enabled ()) then f ()
  else begin
    let started_ns = Span.now_ns () in
    Fun.protect
      ~finally:(fun () -> Metrics.observe hist (Span.now_ns () - started_ns))
      f
  end

let default_dir () =
  let absolute p = String.length p > 0 && p.[0] = '/' in
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some dir when absolute dir -> Filename.concat dir "ebp"
  | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some home when absolute home ->
          Filename.concat (Filename.concat home ".cache") "ebp"
      | _ -> ".ebp-cache")

let make_key ~name ~source ~seed ?fuel () =
  let fuel = match fuel with None -> "unlimited" | Some n -> string_of_int n in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ version; name; Digest.to_hex (Digest.string source);
            string_of_int seed; fuel ]))

let entry_path ~dir ~key = Filename.concat dir (key ^ ".trace")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let write_int oc v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  output_bytes oc b

let read_int ic =
  let b = Bytes.create 8 in
  really_input ic b 0 8;
  Int64.to_int (Bytes.get_int64_le b 0)

let store ~dir ~key ?(meta = "") trace =
  timed m_store_ns @@ fun () ->
  match
    mkdir_p dir;
    let tmp = Filename.temp_file ~temp_dir:dir ("." ^ key) ".tmp" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
      (fun () ->
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc magic;
            write_int oc (String.length meta);
            output_string oc meta;
            Trace.write_binary oc trace;
            Metrics.add m_bytes_written (pos_out oc));
        Sys.rename tmp (entry_path ~dir ~key))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let index_key ~key ~page_sizes =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (version :: key :: Write_index.codec_version
          :: List.map string_of_int page_sizes)))

let index_path ~dir ~key ~page_sizes =
  Filename.concat dir (index_key ~key ~page_sizes ^ ".widx")

let store_index ~dir ~key ~page_sizes index =
  timed m_store_ns @@ fun () ->
  match
    mkdir_p dir;
    let ikey = index_key ~key ~page_sizes in
    let tmp = Filename.temp_file ~temp_dir:dir ("." ^ ikey) ".tmp" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
      (fun () ->
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Write_index.write_binary oc index;
            Metrics.add m_bytes_written (pos_out oc));
        Sys.rename tmp (index_path ~dir ~key ~page_sizes))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let lookup_index ~dir ~key ~page_sizes =
  timed m_lookup_ns @@ fun () ->
  let path = index_path ~dir ~key ~page_sizes in
  let found =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match Write_index.read_binary ic with
            | Ok index ->
                Metrics.add m_bytes_read (in_channel_length ic);
                Some index
            | Error _ -> None
            | exception (End_of_file | Sys_error _ | Invalid_argument _) ->
                None)
  in
  Metrics.incr (match found with Some _ -> m_index_hits | None -> m_index_misses);
  found

let lookup ~dir ~key =
  timed m_lookup_ns @@ fun () ->
  let path = entry_path ~dir ~key in
  let found =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match
              let got = really_input_string ic (String.length magic) in
              if got <> magic then None
              else
                let len = read_int ic in
                let meta = really_input_string ic len in
                match Trace.read_binary ic with
                | Ok trace ->
                    Metrics.add m_bytes_read (in_channel_length ic);
                    Some (trace, meta)
                | Error _ -> None
            with
            | entry -> entry
            | exception (End_of_file | Sys_error _ | Invalid_argument _) ->
                None)
  in
  Metrics.incr (match found with Some _ -> m_hits | None -> m_misses);
  found

(* Garbage collection. The odoc contract is that entries never need
   invalidation (keys are content hashes over the codec version), only
   reclamation — so GC is pure space management: drop temp-file litter
   from interrupted stores, then evict coldest-first by mtime. *)

type entry_kind = Trace_entry | Index_entry | Tmp_entry

type entry = {
  entry_file : string;
  entry_kind : entry_kind;
  entry_bytes : int;
  entry_mtime : float;
}

let classify file =
  (* Temp files look like [.<key>NNNNNN.tmp]; classify on the suffix
     first so a stray dot-prefixed .trace still counts as a trace. *)
  if Filename.check_suffix file ".trace" then Some Trace_entry
  else if Filename.check_suffix file ".widx" then Some Index_entry
  else if Filename.check_suffix file ".tmp" && String.length file > 0
          && file.[0] = '.' then Some Tmp_entry
  else None

let entries ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter_map (fun file ->
             match classify file with
             | None -> None
             | Some entry_kind -> (
                 match Unix.stat (Filename.concat dir file) with
                 | exception Unix.Unix_error _ -> None
                 | st when st.Unix.st_kind <> Unix.S_REG -> None
                 | st ->
                     Some
                       {
                         entry_file = file;
                         entry_kind;
                         entry_bytes = st.Unix.st_size;
                         entry_mtime = st.Unix.st_mtime;
                       }))
      |> List.sort (fun a b ->
             match compare a.entry_mtime b.entry_mtime with
             | 0 -> compare a.entry_file b.entry_file
             | c -> c)

let remove_entry ~dir e =
  match Sys.remove (Filename.concat dir e.entry_file) with
  | () ->
      Metrics.incr m_gc_removed;
      Metrics.add m_gc_reclaimed e.entry_bytes;
      true
  | exception Sys_error _ -> false

let total_bytes es =
  List.fold_left (fun acc e -> acc + e.entry_bytes) 0 es

let clear ~dir =
  let removed, reclaimed =
    List.fold_left
      (fun (n, b) e ->
        if remove_entry ~dir e then (n + 1, b + e.entry_bytes) else (n, b))
      (0, 0) (entries ~dir)
  in
  Metrics.set g_disk_bytes (float_of_int (total_bytes (entries ~dir)));
  (removed, reclaimed)

let gc ~dir ~max_bytes =
  let tmp, live =
    List.partition (fun e -> e.entry_kind = Tmp_entry) (entries ~dir)
  in
  let drop acc e =
    let n, b = acc in
    if remove_entry ~dir e then (n + 1, b + e.entry_bytes) else acc
  in
  let acc = List.fold_left drop (0, 0) tmp in
  (* [entries] sorts oldest-mtime first, so a plain fold evicts coldest
     entries until the live set fits. *)
  let acc, _ =
    List.fold_left
      (fun ((n, b), remaining) e ->
        if remaining <= max_bytes then ((n, b), remaining)
        else if remove_entry ~dir e then
          ((n + 1, b + e.entry_bytes), remaining - e.entry_bytes)
        else ((n, b), remaining))
      (acc, total_bytes live)
      live
  in
  Metrics.set g_disk_bytes (float_of_int (total_bytes (entries ~dir)));
  acc
