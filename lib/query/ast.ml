(* Typed AST of the trace query language. A query selects from the
   trace's WRITE events: the predicate filters them, the aggregation
   reduces them. Semantics are specified in docs/QUERY.md and pinned by
   the two execution engines agreeing on every query (Scan_engine is the
   oracle for Compiled). *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | All  (* no [where] clause; only ever the whole predicate *)
  | Pc_cmp of cmp * int
  | Pc_in of int * int  (* inclusive *)
  | Addr_in of int * int  (* write range intersects [a, b] *)
  | Time_in of int * int  (* event index within [a, b] *)
  | Live of Ebp_sessions.Session.t
      (* write lands in some matching object's install window: strictly
         between install and remove, intersecting the installed range *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type distinct_field = D_pc | D_word
type group_key = G_object | G_pc
type agg = Count | Count_distinct of distinct_field

type query = {
  agg : agg;
  pred : pred;
  group : group_key option;
  top : int option;  (* only with [group] *)
  bucket : int option;  (* bucket width in events; excludes [group] *)
}

let equal (a : query) (b : query) = a = b

(* --- canonical rendering (inverse of Parser.parse) --- *)

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* The [live(...)] session descriptor; Parser.session_of_spec is the
   inverse. *)
let spec_of_session (s : Ebp_sessions.Session.t) =
  match s with
  | One_local_auto { func; var } -> Printf.sprintf "local:%s.%s" func var
  | All_local_in_func { func } -> Printf.sprintf "locals:%s" func
  | One_global_static { var } -> Printf.sprintf "global:%s" var
  | One_heap { site; seq } -> Printf.sprintf "heap:%s#%d" site seq
  | All_heap_in_func { func } -> Printf.sprintf "heapfn:%s" func

(* Precedence: or < and < not < atom. A child at its parent's level is
   parenthesized on the right, so the rendering reparses to the same
   tree (the parser is left-associative). *)
let rec add_pred buf prec p =
  let wrap need body =
    if need then begin
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  match p with
  | All -> Buffer.add_string buf "all"
  | Pc_cmp (c, n) ->
      Buffer.add_string buf (Printf.sprintf "pc %s %d" (cmp_to_string c) n)
  | Pc_in (a, b) -> Buffer.add_string buf (Printf.sprintf "pc in [%d,%d]" a b)
  | Addr_in (a, b) ->
      Buffer.add_string buf (Printf.sprintf "addr in [%d,%d]" a b)
  | Time_in (a, b) ->
      Buffer.add_string buf (Printf.sprintf "time in [%d,%d]" a b)
  | Live s ->
      Buffer.add_string buf "live(";
      Buffer.add_string buf (spec_of_session s);
      Buffer.add_char buf ')'
  | Or (a, b) ->
      wrap (prec > 1) (fun () ->
          add_pred buf 1 a;
          Buffer.add_string buf " or ";
          add_pred buf 2 b)
  | And (a, b) ->
      wrap (prec > 2) (fun () ->
          add_pred buf 2 a;
          Buffer.add_string buf " and ";
          add_pred buf 3 b)
  | Not a ->
      Buffer.add_string buf "not ";
      add_pred buf 3 a

let pred_to_string p =
  let buf = Buffer.create 64 in
  add_pred buf 0 p;
  Buffer.contents buf

let to_string (q : query) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (match q.agg with
    | Count -> "count"
    | Count_distinct D_pc -> "count distinct pc"
    | Count_distinct D_word -> "count distinct word");
  (match q.pred with
  | All -> ()
  | p ->
      Buffer.add_string buf " where ";
      add_pred buf 0 p);
  (match q.group with
  | Some k ->
      Buffer.add_string buf
        (match k with G_object -> " group by object" | G_pc -> " group by pc");
      Option.iter (fun t -> Buffer.add_string buf (Printf.sprintf " top %d" t)) q.top
  | None -> ());
  Option.iter (fun w -> Buffer.add_string buf (Printf.sprintf " bucket by %d" w)) q.bucket;
  Buffer.contents buf

(* --- shrinking (for the fuzzer's minimal-reproducer search) --- *)

(* One-step predicate simplifications: each composite node replaced by
   one of its children. *)
let rec pred_candidates p =
  match p with
  | All | Pc_cmp _ | Pc_in _ | Addr_in _ | Time_in _ | Live _ -> []
  | And (a, b) ->
      (a :: b :: List.map (fun a' -> And (a', b)) (pred_candidates a))
      @ List.map (fun b' -> And (a, b')) (pred_candidates b)
  | Or (a, b) ->
      (a :: b :: List.map (fun a' -> Or (a', b)) (pred_candidates a))
      @ List.map (fun b' -> Or (a, b')) (pred_candidates b)
  | Not a -> a :: List.map (fun a' -> Not a') (pred_candidates a)

let shrink_candidates (q : query) =
  let drop_clauses =
    List.filter_map Fun.id
      [
        (if q.top <> None then Some { q with top = None } else None);
        (if q.bucket <> None then Some { q with bucket = None } else None);
        (if q.group <> None then Some { q with group = None; top = None }
         else None);
        (match q.agg with
        | Count_distinct _ -> Some { q with agg = Count }
        | Count -> None);
        (if q.pred <> All then Some { q with pred = All } else None);
      ]
  in
  drop_clauses @ List.map (fun p -> { q with pred = p }) (pred_candidates q.pred)
