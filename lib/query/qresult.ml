(* Engine-independent query results. Both engines reduce to this shape
   with the SAME canonical ordering (group keys ascending, buckets
   ascending, zero rows omitted), so the engine-equivalence guarantee is
   structural equality here, and byte-identity of the rendered output
   follows because rendering (Query.render) happens once, downstream of
   the engines. *)

type raw =
  | Count of int
  | Groups of (int * int) list
      (* (key ordinal, count), key ascending, counts > 0. The ordinal is
         an object id for [group by object], the pc for [group by pc]. *)
  | Buckets of (int * int) list
      (* (bucket start event index, count), ascending, counts > 0 *)

let equal (a : raw) (b : raw) = a = b

let to_debug_string = function
  | Count n -> Printf.sprintf "count=%d" n
  | Groups rows ->
      "groups="
      ^ String.concat ","
          (List.map (fun (k, c) -> Printf.sprintf "%d:%d" k c) rows)
  | Buckets rows ->
      "buckets="
      ^ String.concat ","
          (List.map (fun (k, c) -> Printf.sprintf "%d:%d" k c) rows)

(* Display order for groups: count descending, then key ascending —
   applied at render time (after the engines are compared on the full
   canonical form), with [top] truncation. *)
let sort_groups ?top rows =
  let sorted =
    List.sort
      (fun (k1, c1) (k2, c2) ->
        if c1 <> c2 then Int.compare c2 c1 else Int.compare k1 k2)
      rows
  in
  match top with
  | None -> sorted
  | Some k -> List.filteri (fun i _ -> i < k) sorted
