(** Live recording jobs: the server side of {!Protocol.Live_query}.

    A job records a program through the streaming pipeline
    ({!Ebp_trace.Stream.Writer} into an in-memory buffer, write index
    maintained incrementally per sealed block) while the machine is
    still running, driven in bounded fuel slices. {!fetch} advances the
    job past the caller's watermark and returns the {e sealed prefix}:
    a trace of exactly the first [high_water] events, the incremental
    index snapshot over them, and whether the recording completed.

    Prefix consistency is inherited from {!Ebp_trace.Stream.read_prefix};
    index-vs-batch equality from {!Ebp_trace.Write_index.Incremental}
    (fault-degraded builders yield [None] and the caller replans without
    an index). A completed job's trace is byte-identical to the batch
    recorder's, so final answers match batch answers. *)

type t

val create : ?block_events:int -> ?page_sizes:int list -> unit -> t
(** [block_events] sizes the stream's sealed blocks (default 64Ki
    events); [page_sizes] must match the replay configuration (default
    {!Ebp_sessions.Replay.default_page_sizes}). *)

type prefix = {
  p_trace : Ebp_trace.Trace.t;  (** the sealed prefix, decoded *)
  p_index : Ebp_trace.Write_index.t option;
      (** incremental index over exactly [p_trace]; [None] when the
          builder was fault-degraded ([stream.index_merge]) *)
  p_high_water : int;  (** events in [p_trace] *)
  p_complete : bool;
}

val fetch :
  t ->
  name:string ->
  source:string ->
  seed:int ->
  min_events:int ->
  (prefix, string) result
(** Find or start the job for [(name, source, seed)], advance it until
    the sealed prefix strictly exceeds [min_events] events (or the run
    stops), and return the prefix. [Error] on a compile failure or a
    corrupt stream (the latter cannot happen in-memory short of injected
    faults). *)

val jobs : t -> int
(** Number of resident jobs (diagnostics). *)
