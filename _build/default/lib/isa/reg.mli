(** Machine registers.

    The simulated CPU (a SPARC-class load/store RISC, see DESIGN.md) has 32
    general-purpose integer registers. Register 0 is hard-wired to zero, as
    on SPARC/MIPS. The remaining names follow a MIPS-like software
    convention, which the MiniC code generator relies on:

    - [ra] return address, [sp] stack pointer, [fp] frame pointer
    - [a0]–[a5] argument registers
    - [v0], [v1] result registers
    - [t0]–[t7] caller-saved temporaries (expression evaluation stack)
    - [s0]–[s7] callee-saved registers
    - [k0], [k1] reserved for instrumentation stubs (never used by
      generated code, so patch-inserted code can clobber them freely) *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument unless the index is in [[0, 31]]. *)

val to_int : t -> int

val zero : t
val ra : t
val sp : t
val fp : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val a4 : t
val a5 : t
val v0 : t
val v1 : t

val t_ : int -> t
(** [t_ i] is temporary register [ti] for [i] in [[0, 7]]. *)

val s_ : int -> t
(** [s_ i] is callee-saved register [si] for [i] in [[0, 7]]. *)

val k0 : t
val k1 : t

val count : int
(** Number of registers (32). *)

val name : t -> string
(** Conventional name, e.g. ["fp"], ["t3"]. *)

val of_name : string -> t option
(** Inverse of {!name}; also accepts ["r12"]-style raw names. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
