lib/lang/abi.mli: Typed
