Corruption handling end to end: a damaged cache entry is detected by the
checksum trailer, quarantined (renamed *.corrupt), and the next cached
run falls back to re-recording instead of failing.

  $ cat > tiny.mc <<'MC'
  > int g;
  > int main() {
  >   int i;
  >   for (i = 0; i < 10; i = i + 1) { g = g + i; }
  >   return 0;
  > }
  > MC
  $ ebp trace tiny.mc --cached --cache-dir cache 2>&1 >/dev/null
  phase 1: traced and cached (25 events)

Flip one byte in the stored entry's body:

  $ entry=$(ls cache/*.trace)
  $ printf '\377' | dd of="$entry" bs=1 seek=40 conv=notrunc status=none

The scanner reports the damage, quarantines the file, and exits 1:

  $ ebp cache verify --cache-dir cache > scan.out
  [1]
  $ sed -E 's/[0-9a-f]{32}/KEY/g' scan.out
  corrupt: KEY.trace (checksum mismatch) -> quarantined
  1 entries checked: 0 intact, 1 corrupt, 0 temp files
  $ ls cache | sed -E 's/[0-9a-f]{32}/KEY/g'
  KEY.trace.corrupt

The quarantined corpse is not an entry: a re-scan is clean, and a cached
run treats the key as a miss and re-records through it:

  $ ebp cache verify --cache-dir cache
  0 entries checked: 0 intact, 0 corrupt, 0 temp files
  $ ebp trace tiny.mc --cached --cache-dir cache 2>&1 >/dev/null
  phase 1: traced and cached (25 events)
  $ ebp trace tiny.mc --cached --cache-dir cache 2>&1 >/dev/null
  phase 1: cache hit, no execution (25 events)

Corruption discovered mid-run is quarantined on the fly (stderr notice)
and the run recovers the same way:

  $ entry=$(ls cache/*.trace)
  $ printf '\377' | dd of="$entry" bs=1 seek=40 conv=notrunc status=none
  $ ebp trace tiny.mc --cached --cache-dir cache 2>&1 >/dev/null \
  >   | sed -E 's/[0-9a-f]{32}/KEY/g'
  ebp: quarantined corrupt cache entry KEY.trace (checksum mismatch)
  phase 1: traced and cached (25 events)

The experiment engine recovers the same way when its cached write index
is damaged — the report is identical to a cache-free run:

  $ ebp experiment --workloads circuit --only table1 --cache-dir cache 2>/dev/null >/dev/null
  $ widx=$(ls cache/*.widx)
  $ printf '\377' | dd of="$widx" bs=1 seek=40 conv=notrunc status=none
  $ ebp experiment --workloads circuit --only table1 --cache-dir cache 2>/dev/null >report1
  $ ebp experiment --workloads circuit --only table1 2>/dev/null >report2
  $ diff report1 report2

gc sweeps the quarantined corpses (both of them) before anything else,
leaving a cache that scans clean:

  $ ebp cache gc --cache-dir cache --max-bytes 100000000 | sed -E 's/[0-9]+ bytes/N bytes/'
  removed 2 entries, reclaimed N bytes
  $ ebp cache verify --cache-dir cache
  3 entries checked: 3 intact, 0 corrupt, 0 temp files
