The trace query language (docs/QUERY.md): one expression, two engines.
The compiled engine lowers predicates onto write-index posting lists, the
scan engine streams the trace once — and every query must render the same
bytes through either. A tiny program keeps the recordings cheap.

  $ cat > tiny.mc <<'MC'
  > int g;
  > int h;
  > int main() {
  >   int i;
  >   for (i = 0; i < 10; i = i + 1) { g = g + i; }
  >   h = g * 2;
  >   print_int(g);
  >   return 0;
  > }
  > MC

A bare count totals every recorded write:

  $ ebp query tiny.mc 'count' 2>/dev/null
  count
  -----
  22   

The session-window join: writes landing inside a monitored object's
install window.

  $ ebp query tiny.mc 'count where live(global:g)' 2>/dev/null
  count
  -----
  10   

Grouping and distinct-counting, with the same table renderer everywhere:

  $ ebp query tiny.mc 'count group by object' 2>/dev/null
  object          count
  --------------  -----
  local:main.i#1     11
  global:g           10
  global:h            1

  $ ebp query tiny.mc 'count distinct pc where live(global:g)' 2>/dev/null
  distinct_pc
  -----------
  1          

NDJSON for machines, one row per line:

  $ ebp query tiny.mc 'count where live(global:g) group by pc' --format ndjson 2>/dev/null
  {"pc":19,"count":10}

Engine byte-identity: the indexed and scan engines render the same bytes,
and --check runs both and asserts it in-process.

  $ ebp query tiny.mc 'count where live(global:g) group by pc' --engine indexed 2>/dev/null > indexed.out
  $ ebp query tiny.mc 'count where live(global:g) group by pc' --engine scan 2>/dev/null > scan.out
  $ diff indexed.out scan.out

  $ ebp query tiny.mc 'count where live(global:g) and pc > 2' --check 2>check.err >/dev/null
  $ grep agree check.err
  query: engines agree

Parse and type errors are one-line diagnostics with a caret, never a
stack trace, and the command exits nonzero.

  $ ebp query tiny.mc 'count where pc >' 2>&1 >/dev/null
  ebp: query:1:17: expected an integer after the comparison, got 'end of query'
    count where pc >
                    ^
  [1]

  $ ebp query tiny.mc 'frobnicate' 2>&1 >/dev/null
  ebp: query:1:1: expected 'count', got 'frobnicate'
    frobnicate
    ^
  [1]

  $ ebp query tiny.mc 'count where live(bogus:g)' 2>&1 >/dev/null
  ebp: query:1:18: bad session descriptor "bogus:g" (expected local:FUNC.VAR, locals:FUNC, global:VAR, heap:SITE#N, or heapfn:FUNC)
    count where live(bogus:g)
                     ^
  [1]

  $ ebp query tiny.mc 'count where addr in [9,3]' 2>&1 >/dev/null
  ebp: query:1:21: empty addr range: 9 > 3
    count where addr in [9,3]
                        ^
  [1]

  $ ebp query tiny.mc 'count bucket by 0' 2>&1 >/dev/null
  ebp: query:1:17: bucket width must be positive
    count bucket by 0
                    ^
  [1]

  $ ebp query tiny.mc 'count where (pc > 1' 2>&1 >/dev/null
  ebp: query:1:20: expected ')', got 'end of query'
    count where (pc > 1
                       ^
  [1]
