(** Indexed phase-2 replay: counting variables from binary-searched range
    counts over a {!Ebp_trace.Write_index} instead of a per-shard trace
    scan.

    Where the scan engine costs [O(shards × events)], this engine costs
    one index build ([O(events log events)], done by the caller and shared
    across shards and domains) plus, per session, work proportional to its
    {e answers}: the session's monitored ranges are grouped into segments
    — maximal word (page) runs sharing the same install/remove events,
    hence the same live windows — and each posting key in a segment is
    counted against the segment's shared windows by binary search (or one
    linear merge when the window count rivals the key's write count).
    Hits deduplicate across the words of one write by
    inclusion–exclusion (exact for writes of ≤ 2 words; wider writes —
    nonexistent in machine traces — are checked individually), and page
    touches likewise over a write's first/last page, mirroring the scan
    engine's [page_write] exactly.

    Semantics quirks of the scan engine are deliberately preserved for
    bit-identity, notably: word liveness follows idempotent-set rules
    (any covering remove clears the word even if another matching object
    still covers it), while page liveness is refcounted per
    (session, page). [Replay.replay_all ~engine:Indexed] drives this
    engine; [Replay.replay_shard] remains the correctness oracle, and the
    equivalence is property-tested in [test/test_indexed.ml] and enforced
    end-to-end by [test/cram/engine.t]. *)

val replay_shard :
  index:Ebp_trace.Write_index.t ->
  page_sizes:int list ->
  Ebp_trace.Trace.t ->
  Session.t list ->
  (Session.t * Counts.t) list
(** [replay_shard ~index ~page_sizes trace sessions] — [index] must have
    been built from [trace] with (at least) every size in [page_sizes].
    Order is preserved; results are bit-identical to
    [Replay.replay_shard ~page_sizes trace sessions].
    @raise Invalid_argument if the index lacks a requested page size. *)
