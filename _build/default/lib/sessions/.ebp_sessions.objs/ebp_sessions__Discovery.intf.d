lib/sessions/discovery.mli: Ebp_trace Session
