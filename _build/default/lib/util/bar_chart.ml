type series = { label : string; value : float }
type group = { name : string; series : series list }

let render ?(width = 50) ?(log_scale = false) ~title ~groups () =
  let scale v =
    if v < 0.0 then invalid_arg "Bar_chart.render: negative value";
    if log_scale then log10 (1.0 +. v) else v
  in
  let max_scaled =
    List.fold_left
      (fun acc g ->
        List.fold_left (fun acc s -> Float.max acc (scale s.value)) acc g.series)
      0.0 groups
  in
  let label_width =
    List.fold_left
      (fun acc g ->
        List.fold_left (fun acc s -> max acc (String.length s.label)) acc g.series)
      0 groups
  in
  let bar v =
    let len =
      if max_scaled = 0.0 then 0
      else int_of_float (Float.round (scale v /. max_scaled *. float_of_int width))
    in
    String.make len '#'
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length title) '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun g ->
      Buffer.add_string buf g.name;
      Buffer.add_char buf '\n';
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %10.2f |%s\n" label_width s.label s.value
               (bar s.value)))
        g.series)
    groups;
  Buffer.contents buf
