lib/wms/timing.mli: Format
