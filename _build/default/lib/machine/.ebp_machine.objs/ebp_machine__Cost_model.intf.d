lib/machine/cost_model.mli: Ebp_isa
