module Interval = Ebp_util.Interval

type event =
  | Install of { obj : Object_desc.t; range : Interval.t }
  | Remove of { obj : Object_desc.t; range : Interval.t }
  | Write of { range : Interval.t; pc : int }

(* Packed storage: 4 ints per event — tagged object word, lo, hi, pc.
   The tag lives in the low 2 bits of the first word; the object id (or 0
   for writes) in the remaining bits. *)
let stride = 4
let tag_install = 0
let tag_remove = 1
let tag_write = 2

type t = {
  data : int array;
  count : int;
  objs : Object_desc.t array;
}

module Builder = struct
  type t = {
    mutable data : int array;
    mutable count : int;
    mutable objs : Object_desc.t list;  (* reversed *)
    mutable obj_count : int;
    intern : (Object_desc.t, int) Hashtbl.t;
  }

  let create ?(hint = 1024) () =
    { data = Array.make (max 16 hint * stride) 0; count = 0; objs = [];
      obj_count = 0; intern = Hashtbl.create 64 }

  let ensure b =
    let needed = (b.count + 1) * stride in
    if needed > Array.length b.data then begin
      let bigger = Array.make (max needed (2 * Array.length b.data)) 0 in
      Array.blit b.data 0 bigger 0 (b.count * stride);
      b.data <- bigger
    end

  (* [register] appends without consulting the intern table: the recorder
     mints a fresh descriptor per activation, so an intern lookup would
     hash two strings only to miss. Callers that might see the same
     descriptor twice go through [intern] instead; both draw ids from the
     same sequence, so they can be mixed as long as no descriptor is fed
     to both. *)
  let register b obj =
    let id = b.obj_count in
    b.objs <- obj :: b.objs;
    b.obj_count <- id + 1;
    id

  let intern b obj =
    match Hashtbl.find_opt b.intern obj with
    | Some id -> id
    | None ->
        let id = register b obj in
        Hashtbl.add b.intern obj id;
        id

  let push b w0 lo hi pc =
    ensure b;
    let base = b.count * stride in
    b.data.(base) <- w0;
    b.data.(base + 1) <- lo;
    b.data.(base + 2) <- hi;
    b.data.(base + 3) <- pc;
    b.count <- b.count + 1

  let add_install_id b id ~lo ~hi = push b ((id lsl 2) lor tag_install) lo hi (-1)

  let add_remove_id b id ~lo ~hi = push b ((id lsl 2) lor tag_remove) lo hi (-1)

  let add_install b obj range =
    add_install_id b (intern b obj) ~lo:(Interval.lo range) ~hi:(Interval.hi range)

  let add_remove b obj range =
    add_remove_id b (intern b obj) ~lo:(Interval.lo range) ~hi:(Interval.hi range)

  let add_write b range ~pc =
    push b tag_write (Interval.lo range) (Interval.hi range) pc

  let add_write_raw b ~lo ~hi ~pc = push b tag_write lo hi pc

  let length b = b.count

  let finish b =
    let used = b.count * stride in
    {
      (* A well-hinted builder lands exactly full: hand the buffer over
         without the copy. The builder must not be reused after. *)
      data = (if Array.length b.data = used then b.data else Array.sub b.data 0 used);
      count = b.count;
      objs = Array.of_list (List.rev b.objs);
    }
end

let length t = t.count

let get t i =
  if i < 0 || i >= t.count then invalid_arg "Trace.get: index out of range";
  let base = i * stride in
  let w0 = t.data.(base) in
  let tag = w0 land 3 in
  let range = Interval.make ~lo:t.data.(base + 1) ~hi:t.data.(base + 2) in
  if tag = tag_write then Write { range; pc = t.data.(base + 3) }
  else
    let obj = t.objs.(w0 lsr 2) in
    if tag = tag_install then Install { obj; range } else Remove { obj; range }

let iter t f =
  for i = 0 to t.count - 1 do
    f (get t i)
  done

let iter_raw t f =
  let data = t.data in
  for i = 0 to t.count - 1 do
    let base = i * stride in
    let w0 = Array.unsafe_get data base in
    let tag = w0 land 3 in
    f ~tag
      ~obj:(if tag = tag_write then -1 else w0 lsr 2)
      ~lo:(Array.unsafe_get data (base + 1))
      ~hi:(Array.unsafe_get data (base + 2))
      ~pc:(if tag = tag_write then Array.unsafe_get data (base + 3) else -1)
  done

let object_count t = Array.length t.objs
let object_of_id t id = t.objs.(id)
let objects t = Array.copy t.objs

type stats = {
  events : int;
  installs : int;
  removes : int;
  writes : int;
  distinct_objects : int;
  write_bytes : int;
}

let stats t =
  let installs = ref 0 and removes = ref 0 and writes = ref 0 and bytes = ref 0 in
  iter_raw t (fun ~tag ~obj:_ ~lo ~hi ~pc:_ ->
      if tag = tag_install then incr installs
      else if tag = tag_remove then incr removes
      else begin
        incr writes;
        bytes := !bytes + (hi - lo + 1)
      end);
  {
    events = t.count;
    installs = !installs;
    removes = !removes;
    writes = !writes;
    distinct_objects = Array.length t.objs;
    write_bytes = !bytes;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "events=%d installs=%d removes=%d writes=%d objects=%d write_bytes=%d"
    s.events s.installs s.removes s.writes s.distinct_objects s.write_bytes

(* --- text codec --- *)

let to_text t =
  let buf = Buffer.create (t.count * 24) in
  iter t (fun event ->
      (match event with
      | Install { obj; range } ->
          Buffer.add_string buf
            (Printf.sprintf "I %s %d %d" (Object_desc.to_string obj)
               (Interval.lo range) (Interval.hi range))
      | Remove { obj; range } ->
          Buffer.add_string buf
            (Printf.sprintf "R %s %d %d" (Object_desc.to_string obj)
               (Interval.lo range) (Interval.hi range))
      | Write { range; pc } ->
          Buffer.add_string buf
            (Printf.sprintf "W %d %d %d" (Interval.lo range) (Interval.hi range) pc));
      Buffer.add_char buf '\n');
  Buffer.contents buf

let of_text text =
  let b = Builder.create () in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None && String.trim line <> "" then
        let fail msg = error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg) in
        match String.split_on_char ' ' (String.trim line) with
        | [ "W"; lo; hi; pc ] -> (
            match (int_of_string_opt lo, int_of_string_opt hi, int_of_string_opt pc) with
            | Some lo, Some hi, Some pc when lo <= hi ->
                Builder.add_write b (Interval.make ~lo ~hi) ~pc
            | _ -> fail "bad write event")
        | [ tag; obj; lo; hi ] when tag = "I" || tag = "R" -> (
            match
              (Object_desc.of_string obj, int_of_string_opt lo, int_of_string_opt hi)
            with
            | Some obj, Some lo, Some hi when lo <= hi ->
                let range = Interval.make ~lo ~hi in
                if tag = "I" then Builder.add_install b obj range
                else Builder.add_remove b obj range
            | _ -> fail "bad install/remove event")
        | _ -> fail "unrecognized event")
    (String.split_on_char '\n' text);
  match !error with Some msg -> Error msg | None -> Ok (Builder.finish b)

(* --- binary codec ---

   EBPT2 is a struct-of-arrays layout: after the header, each event field
   is one contiguous column, encoded with LEB128 varints.

     magic "EBPT2"
     uvarint nobjs, then per object: uvarint length + descriptor string
     uvarint count
     column 1: w0 (tagged object word) as uvarint, per event
     column 2: lo, zigzag-varint delta against the previous event's lo
     column 3: hi - lo as uvarint (store widths: almost always 0 or 3)
     column 4: pc, zigzag-varint delta against the previous *write*'s pc,
               write events only (install/remove pcs are -1 by
               construction and are reconstructed, not stored)

   Both delta chains start from 0. Traces have strong spatial (lo) and
   code (pc) locality, so a write event typically costs 4-6 bytes against
   the 32 of the old fixed-width codec. Varints are chains of 7-bit
   groups, low first, high bit = continuation; zigzag maps sign bit to
   bit 0 ((v lsl 1) lxor (v asr 62) on 63-bit ints) so small negative
   deltas stay short. *)

module Metrics = Ebp_obs.Metrics
module Obs_span = Ebp_obs.Span

let m_bytes_out = Metrics.counter "trace.codec.bytes_out"
let m_bytes_in = Metrics.counter "trace.codec.bytes_in"

let codec_version = "EBPT2"

let add_uvarint buf v =
  let rec go v =
    if 0 <= v && v < 0x80 then Buffer.add_char buf (Char.unsafe_chr v)
    else begin
      Buffer.add_char buf (Char.unsafe_chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let[@inline] zigzag v = (v lsl 1) lxor (v asr 62)
let[@inline] unzigzag v = (v lsr 1) lxor (- (v land 1))

let add_svarint buf v = add_uvarint buf (zigzag v)

let encode t =
  Obs_span.with_span "codec.encode" @@ fun () ->
  let buf = Buffer.create (64 + (t.count * 6)) in
  Buffer.add_string buf codec_version;
  add_uvarint buf (Array.length t.objs);
  Array.iter
    (fun obj ->
      let s = Object_desc.to_string obj in
      add_uvarint buf (String.length s);
      Buffer.add_string buf s)
    t.objs;
  add_uvarint buf t.count;
  for i = 0 to t.count - 1 do
    add_uvarint buf t.data.(i * stride)
  done;
  let prev_lo = ref 0 in
  for i = 0 to t.count - 1 do
    let lo = t.data.((i * stride) + 1) in
    add_svarint buf (lo - !prev_lo);
    prev_lo := lo
  done;
  for i = 0 to t.count - 1 do
    let base = i * stride in
    add_uvarint buf (t.data.(base + 2) - t.data.(base + 1))
  done;
  let prev_pc = ref 0 in
  for i = 0 to t.count - 1 do
    let base = i * stride in
    if t.data.(base) land 3 = tag_write then begin
      let pc = t.data.(base + 3) in
      add_svarint buf (pc - !prev_pc);
      prev_pc := pc
    end
  done;
  let s = Buffer.contents buf in
  Metrics.add m_bytes_out (String.length s);
  s

exception Malformed of string

let p_decode = Ebp_util.Fault.point "trace.codec.decode"

let decode s =
  Obs_span.with_span "codec.decode" @@ fun () ->
  match Ebp_util.Fault.fires p_decode with
  | Some _ -> Error "injected fault at trace.codec.decode"
  | None ->
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed msg) in
  let next_byte () =
    if !pos >= len then fail "truncated trace";
    let b = Char.code (String.unsafe_get s !pos) in
    incr pos;
    b
  in
  let read_uvarint () =
    let rec go shift acc =
      (* 9 groups cover all 63 bits; a longer chain is corrupt. *)
      if shift > 56 then fail "oversized varint in trace";
      let b = next_byte () in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b < 0x80 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  let read_svarint () = unzigzag (read_uvarint ()) in
  match
    if len < String.length codec_version
       || String.sub s 0 (String.length codec_version) <> codec_version
    then Error "bad trace magic"
    else begin
      pos := String.length codec_version;
      let nobjs = read_uvarint () in
      if nobjs < 0 || nobjs > len - !pos then fail "bad object count in trace";
      let objs =
        Array.init nobjs (fun _ ->
            let slen = read_uvarint () in
            if slen < 0 || slen > len - !pos then fail "truncated trace";
            let str = String.sub s !pos slen in
            pos := !pos + slen;
            match Object_desc.of_string str with
            | Some o -> o
            | None -> fail "bad object descriptor in trace")
      in
      let count = read_uvarint () in
      (* Every event spends at least 3 bytes across its columns, so the
         count is bounded by the remaining payload — this rejects corrupt
         headers before the allocation below. *)
      if count < 0 || count > len - !pos then fail "bad event count in trace";
      let data = Array.make (count * stride) 0 in
      for i = 0 to count - 1 do
        let w0 = read_uvarint () in
        let tag = w0 land 3 in
        if tag > tag_write then fail "bad event tag in trace";
        if tag <> tag_write && w0 lsr 2 >= nobjs then
          fail "bad object id in trace";
        data.(i * stride) <- w0
      done;
      let prev_lo = ref 0 in
      for i = 0 to count - 1 do
        let lo = !prev_lo + read_svarint () in
        data.((i * stride) + 1) <- lo;
        prev_lo := lo
      done;
      for i = 0 to count - 1 do
        let base = i * stride in
        data.(base + 2) <- data.(base + 1) + read_uvarint ()
      done;
      let prev_pc = ref 0 in
      for i = 0 to count - 1 do
        let base = i * stride in
        if data.(base) land 3 = tag_write then begin
          let pc = !prev_pc + read_svarint () in
          data.(base + 3) <- pc;
          prev_pc := pc
        end
        else data.(base + 3) <- -1
      done;
      if !pos <> len then fail "trailing bytes in trace";
      Metrics.add m_bytes_in len;
      Ok { data; count; objs }
    end
  with
  | result -> result
  | exception Malformed msg -> Error msg

let write_binary oc t = output_string oc (encode t)

let read_binary ic = decode (In_channel.input_all ic)
