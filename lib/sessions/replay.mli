(** Phase 2 of the experiment (Figure 1): replay a program event trace
    against monitor sessions and produce the counting variables.

    For each session the replay maintains the set of active monitors (the
    install/remove events whose object matches the session) and counts:

    - monitor hits: writes overlapping an active monitored word (monitors
      are word-aligned, footnote 7);
    - monitor misses: every other write in the trace — software strategies
      check all writes, so [misses = total writes - hits];
    - per page size, the page-protection transitions (active monitor count
      on a page crossing zero) and [VMActivePageMiss] (misses landing on a
      page holding an active monitor of the session).

    {2 Engines}

    Two engines produce these counts, bit-identically:

    - [Scan] — the original single-pass replay: one walk over the trace
      per shard, maintaining a word-level reverse index of active
      monitors. [O(shards × events)].
    - [Indexed] (the default) — preprocesses the trace once into a
      {!Ebp_trace.Write_index} (sorted posting lists of write positions
      per word and page, plus object timelines) and computes each
      session's counts by binary-searched range counts over its live
      windows, never rescanning the trace. The index is built once and
      shared immutably across shards and domains; pass [~index] to reuse
      a prebuilt (e.g. cached) one.

    The scan engine is kept as the correctness oracle:
    [test/test_indexed.ml] property-checks the equivalence and
    [test/cram/engine.t] enforces it end-to-end.

    {2 Parallel replay}

    The trace is immutable and every counting variable of a session is
    independent of which other sessions share the pass, so the session list
    can be split into contiguous shards replayed concurrently, one domain
    per shard, all over the {e same} trace. Passing [~domains:n] (or an
    existing [~pool]) to {!replay_all} / {!discover_and_replay} does
    exactly that and merges the shard results back in session order — the
    output is bit-identical to the sequential replay by construction (see
    [docs/PARALLELISM.md] for the argument). *)

val default_page_sizes : int list
(** [[4096; 8192]], the paper's VM-4K and VM-8K. *)

type engine = Scan | Indexed

val replay_shard :
  page_sizes:int list ->
  Ebp_trace.Trace.t ->
  Session.t list ->
  (Session.t * Counts.t) list
(** The scan engine on one shard: a single sequential pass over the trace
    for exactly [sessions]. Exposed as the correctness oracle for
    {!Indexed_replay.replay_shard}.
    @raise Invalid_argument on an invalid page size. *)

val replay_all :
  ?page_sizes:int list ->
  ?pool:Ebp_util.Domain_pool.t ->
  ?domains:int ->
  ?engine:engine ->
  ?index:Ebp_trace.Write_index.t ->
  Ebp_trace.Trace.t ->
  Session.t list ->
  (Session.t * Counts.t) list
(** Order is preserved, whatever the parallelism. [~pool] replays on an
    existing domain pool; otherwise [~domains] (default 1, i.e. fully
    sequential) scopes a temporary pool for this call. [~engine] defaults
    to [Indexed]; [~index] supplies a prebuilt index (ignored under
    [Scan]) — it must come from this [trace] with at least [page_sizes].
    When the engine builds its own index, the build is sharded over the
    same pool ({!Ebp_trace.Write_index.build}'s [?pool]). Callers that
    want the engine {e chosen} per query — what the CLI does without
    [--engine] — go through {!Planner.replay} instead.
    @raise Invalid_argument on an invalid page size or an index missing a
    requested page size. *)

val replay :
  ?page_sizes:int list ->
  ?engine:engine ->
  ?index:Ebp_trace.Write_index.t ->
  Ebp_trace.Trace.t ->
  Session.t ->
  Counts.t

val discover_and_replay :
  ?page_sizes:int list ->
  ?pool:Ebp_util.Domain_pool.t ->
  ?domains:int ->
  ?engine:engine ->
  ?index:Ebp_trace.Write_index.t ->
  ?keep_hitless:bool ->
  Ebp_trace.Trace.t ->
  (Session.t * Counts.t) list
(** {!Discovery.discover} + {!replay_all}; unless [keep_hitless] is set,
    sessions with zero monitor hits are dropped, as in the paper ("monitor
    sessions that had no monitor hits were discarded", §8). *)
