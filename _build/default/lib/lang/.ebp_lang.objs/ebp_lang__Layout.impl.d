lib/lang/layout.ml:
