(** Differential fuzzing: generated MiniC programs checked against the
    codebase's built-in redundancies.

    A seed deterministically generates a small, always-terminating MiniC
    program (bounded loops, masked recursion depth and subscripts,
    constant divisors), which is then pushed through ten oracles:

    + {b record} — it compiles, runs without a runtime error, and halts
      with exit code 0;
    + {b run-vs-record} — recording a trace does not perturb execution
      (status, cycles, instructions, output);
    + {b step-vs-run} — the single-{!Ebp_machine.Machine.step} loop and
      {!Ebp_machine.Machine.run}'s batch loop agree exactly;
    + {b strategy-equivalence} — the five watchpoint strategies (NH, VM,
      TP, CP, VB), armed on the same globals over the same program, all
      arm cleanly and report identical (pc, interval) notification
      sequences;
    + {b trace-codec} / {b columnar-codec} / {b index-codec} — the
      EBPT2, EBPT3 and EBPW2 codecs round-trip the recording
      bit-identically;
    + {b stream-vs-batch} — the streaming recorder reproduces the batch
      trace byte-for-byte with an incremental index equal to the batch
      build;
    + {b scan-vs-indexed} — both phase-2 replay engines produce identical
      session counts;
    + {b query-engines} — random well-typed trace queries (built from
      the trace's own pcs, addresses and discovered sessions) produce
      identical results from {!Ebp_query}'s compiled and streaming
      engines.

    A failure carries the offending program (and, for query-engines, the
    offending query; for strategy-equivalence, the minimized monitor
    set); {!shrink} deletes source units (statement groups, helper
    functions, globals) to a fixpoint while the {e same} oracle keeps
    failing — then minimizes the monitor set and the query over the
    shrunk program — yielding a minimal reproducer. [ebp fuzz] drives
    this; a fixed-seed batch also runs in the tier-1 test suite. *)

type program = {
  globals : string list;  (** global declaration lines *)
  funcs : (string * string list) list;  (** helper name, body lines *)
  main_body : string list;  (** statement groups of [main] *)
}

type knobs = {
  gen_events : int;
      (** extra hot write loops appended to [main], ~2k writes each — the
          event-count dial for synthesized workloads (raise the fuel
          accordingly) *)
  gen_heap_churn : int;  (** extra malloc / write-loop / free groups *)
  gen_session_density : int;
      (** extra monitored globals, each with a small write loop *)
}

val default_knobs : knobs
(** All zeros: generation is byte-identical to the knobless fuzzer. *)

val generate : seed:int -> program
(** Deterministic in [seed]; [generate_knobbed] with {!default_knobs}. *)

val generate_knobbed : knobs:knobs -> seed:int -> program
(** Deterministic in [seed] and [knobs]; knob-driven units draw from an
    independent PRNG stream, so the base program never shifts. *)

val render : program -> string
(** Flatten to MiniC source. *)

val check_source :
  ?fuel:int ->
  seed:int ->
  string ->
  (unit, string * string * string option) result
(** Run every oracle over one source string ([seed] seeds the program's
    PRNG). [Error (oracle, detail, query)] names the first oracle that
    failed; [query] is the offending query's canonical text when that
    oracle is query-engines. [fuel] (default 2,000,000) bounds each
    execution. *)

val check_strategies :
  ?fuel:int ->
  seed:int ->
  ?monitors:string list ->
  string ->
  (unit, string) result
(** The strategy-equivalence oracle alone: compile [source], arm every
    strategy in {{!Ebp_core.Debugger.strategy_kind} NH, VM, TP, CP, VB}
    with the same [monitors] (default: the program's globals, in
    declaration order, capped at 6), run each to completion, and demand
    clean arming plus identical (pc, interval) hit sequences. The error
    names the diverging strategy pair and the first differing hit. *)

type failure = {
  seed : int;
  oracle : string;
  detail : string;
  query : string option;  (** the failing query, for query-engines *)
  monitors : string list option;
      (** the minimized monitor set, for strategy-equivalence (filled in
          by {!shrink}) *)
  program : program;
  source : string;
}

val check_program : ?fuel:int -> seed:int -> program -> (unit, failure) result

val check_seed : ?fuel:int -> ?knobs:knobs -> int -> (unit, failure) result
(** [check_program] of [generate_knobbed ~knobs ~seed], executed with the
    same seed. *)

val shrink : ?fuel:int -> failure -> failure
(** Greedy delta-debugging: repeatedly delete the first source unit whose
    removal still fails the same oracle (details may drift, the oracle and
    error class may not), to a fixpoint. Deleting a helper function also
    deletes its call sites, so candidates stay well-formed. A
    strategy-equivalence failure then has its monitor set minimized
    (greedy subset deletion while the strategies still disagree), and a
    query-engines failure its query (via
    {!Ebp_query.Ast.shrink_candidates}), against the shrunk program. *)
