(** CodePatch with the loop-hoisting optimization of §9.

    "A simple optimization reduces the overhead for candidate instructions
    inside loops. A preliminary check {e outside} the loop may be applied
    for write instructions whose target is a loop-invariant memory range.
    If the preliminary check determines that the instruction will be a
    monitor hit, the loop body can be dynamically patched so that each
    iteration correctly results in a monitor notification."

    Implementation: every store whose base register is invariant across
    its innermost enclosing loop ({!Ebp_isa.Cfg}) gets a {e guarded} stub —
    a one-word flag load and a conditional skip around the check — instead
    of the unconditional check. Each loop entry edge is redirected through
    a preheader stub whose pre-checks evaluate the monitor lookup once and
    write the flags (the "dynamic patching": the flag word lives in the
    debuggee's address space, in a reserved scratch region). When the flag
    is clear, an iteration costs a handful of machine cycles instead of a
    SoftwareLookup; when set, the guarded check runs and notifies exactly
    like plain CodePatch.

    Monitors installed or removed {e while} a loop is running (e.g. a heap
    watch armed by an allocation inside the loop) are handled by refreshing
    every previously-evaluated flag on install/remove, so hit behaviour is
    identical to plain CodePatch in all cases — verified by the test
    suite's CP-vs-hoisted-CP equivalence checks. *)

val flag_region_base : int
(** Debuggee-address-space home of the per-store flags: a small read-only
    (to the program) WMS data area, as §3.4 anticipates. *)

type patched

val instrument : Ebp_isa.Program.t -> patched
(** The input must be resolved. Stores in loops with invariant addresses
    get guarded stubs; everything else is patched exactly like
    {!Code_patch.instrument}. *)

val program : patched -> Ebp_isa.Program.t
val patched_stores : patched -> int
val hoisted_stores : patched -> int
(** How many stores received guarded stubs. *)

val loops_optimized : patched -> int
val expansion : patched -> float

type t

val attach :
  ?timing:Timing.t ->
  patched ->
  Ebp_machine.Machine.t ->
  notify:(Wms.notification -> unit) ->
  t
(** Takes over the machine's [Chk] handler. *)

val strategy : t -> Wms.strategy
val stats : t -> Wms.stats

val pre_checks_executed : t -> int
(** Preheader lookups performed (each charged one SoftwareLookup). *)

val guarded_checks_skipped : t -> int
(** Loop-iteration stores that skipped their lookup because the flag was
    clear — each one saved a SoftwareLookup versus plain CodePatch. *)

val original_site : patched -> int -> int option
(** Map an instrumented check pc back to the original store index. *)
