(* Tests for the parallel experiment engine: the Domain_pool work queue,
   the determinism of sharded replay (domains 1/2/4 must be byte-identical
   to the sequential pass), and the on-disk trace cache (round-trip, and
   zero machine execution on a warm hit). *)

module Interval = Ebp_util.Interval
module Prng = Ebp_util.Prng
module Domain_pool = Ebp_util.Domain_pool
module Object_desc = Ebp_trace.Object_desc
module Trace = Ebp_trace.Trace
module Trace_cache = Ebp_trace.Trace_cache
module Session = Ebp_sessions.Session
module Discovery = Ebp_sessions.Discovery
module Counts = Ebp_sessions.Counts
module Replay = Ebp_sessions.Replay
module Workload = Ebp_workloads.Workload

let iv lo hi = Interval.make ~lo ~hi

(* --- Domain_pool --- *)

let test_pool_map_order () =
  List.iter
    (fun domains ->
      Domain_pool.with_pool ~domains (fun pool ->
          let xs = List.init 257 Fun.id in
          Alcotest.(check (list int))
            (Printf.sprintf "order preserved on %d domains" domains)
            (List.map (fun x -> x * x) xs)
            (Domain_pool.map pool (fun x -> x * x) xs)))
    [ 1; 2; 4 ]

let test_pool_empty_and_single () =
  Domain_pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (list int)) "empty batch" [] (Domain_pool.run pool []);
      Alcotest.(check (list string)) "single task" [ "one" ]
        (Domain_pool.run pool [ (fun () -> "one") ]))

let test_pool_exception_propagates () =
  Domain_pool.with_pool ~domains:4 (fun pool ->
      (match
         Domain_pool.run pool
           [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ]
       with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
      (* The pool survives a failed batch. *)
      Alcotest.(check (list int)) "reusable after failure" [ 2; 4 ]
        (Domain_pool.map pool (fun x -> 2 * x) [ 1; 2 ]))

let test_pool_domains_clamped () =
  Domain_pool.with_pool ~domains:0 (fun pool ->
      Alcotest.(check int) "at least one domain" 1 (Domain_pool.domains pool))

(* While fault injection is active, a task dying with [Fault.Injected] is
   retried in place instead of failing the batch — one crashing shard
   must not poison the pool. [Killed] still propagates. *)
let test_pool_contains_injected_faults () =
  let module Fault = Ebp_util.Fault in
  let p = Fault.point "test.pool.body" in
  Fault.configure [ { Fault.pattern = "test.pool.body"; trigger = Fault.Nth 2; action = Fault.Fail } ];
  Fun.protect ~finally:Fault.reset (fun () ->
      List.iter
        (fun domains ->
          Fault.configure
            [ { Fault.pattern = "test.pool.body"; trigger = Fault.Nth 2; action = Fault.Fail } ];
          Domain_pool.with_pool ~domains (fun pool ->
              Alcotest.(check (list int))
                (Printf.sprintf "batch survives a faulted task on %d domains"
                   domains)
                [ 10; 20; 30; 40 ]
                (Domain_pool.run pool
                   (List.map
                      (fun x () ->
                        Fault.check p;
                        10 * x)
                      [ 1; 2; 3; 4 ]))))
        [ 1; 3 ])

let test_pool_kill_propagates () =
  let module Fault = Ebp_util.Fault in
  let p = Fault.point "test.pool.kill" in
  Fault.configure
    [ { Fault.pattern = "test.pool.kill"; trigger = Fault.Nth 1; action = Fault.Kill } ];
  Fun.protect ~finally:Fault.reset (fun () ->
      Domain_pool.with_pool ~domains:2 (fun pool ->
          match
            Domain_pool.run pool
              [ (fun () -> 1); (fun () -> Fault.check p; 2); (fun () -> 3) ]
          with
          | _ -> Alcotest.fail "expected Killed to propagate"
          | exception Fault.Killed "test.pool.kill" -> ()))

(* --- sharded replay determinism --- *)

(* A deterministic synthetic trace big enough to shard interestingly:
   interleaved install/remove lifetimes over dozens of objects of every
   descriptor kind, with writes scattered on and off the monitored words. *)
let synthetic_trace () =
  let prng = Prng.create 0xeb9 in
  let objects =
    Array.init 48 (fun i ->
        let base = 0x1000 + (i * 0x340) in
        let range = iv base (base + 3 + (4 * Prng.int prng 8)) in
        let obj =
          match i mod 4 with
          | 0 -> Object_desc.Global { var = Printf.sprintf "g%d" i }
          | 1 ->
              Object_desc.Local
                { func = Printf.sprintf "f%d" (i mod 6); var = "x"; inst = i }
          | 2 ->
              Object_desc.Heap
                { context = [ Printf.sprintf "alloc%d" (i mod 3); "main" ]; seq = i }
          | _ ->
              Object_desc.Local_static
                { func = Printf.sprintf "f%d" (i mod 6); var = "s" }
        in
        (obj, range))
  in
  let live = Array.make (Array.length objects) false in
  let b = Trace.Builder.create () in
  for _ = 1 to 4000 do
    let i = Prng.int prng (Array.length objects) in
    let obj, range = objects.(i) in
    match Prng.int prng 5 with
    | 0 ->
        if not live.(i) then begin
          Trace.Builder.add_install b obj range;
          live.(i) <- true
        end
    | 1 ->
        if live.(i) then begin
          Trace.Builder.add_remove b obj range;
          live.(i) <- false
        end
    | _ ->
        let lo =
          if Prng.bool prng then Interval.lo range
          else (Interval.lo range + (4 * Prng.int prng 0x200)) land lnot 3
        in
        Trace.Builder.add_write b (iv lo (lo + 3)) ~pc:i
  done;
  Trace.Builder.finish b

let check_bit_identical name expected actual =
  (* Structural equality plus a digest of the marshalled representation:
     the sharded engine must merge to the very same value. (Marshal also
     encodes sharing, so this check is only valid when both values were
     computed from the same in-memory trace.) *)
  Alcotest.(check bool) (name ^ " (structural)") true (expected = actual);
  Alcotest.(check string)
    (name ^ " (marshalled bytes)")
    (Digest.to_hex (Digest.string (Marshal.to_string expected [])))
    (Digest.to_hex (Digest.string (Marshal.to_string actual [])))

let check_same_counts name expected actual =
  (* Across a serialization boundary structural equality is the meaningful
     comparison — equal strings need not be the same string object, so the
     marshalled bytes may legitimately differ in sharing. *)
  Alcotest.(check bool) name true (expected = actual)

let test_replay_determinism_synthetic () =
  let trace = synthetic_trace () in
  let sessions = Discovery.discover trace in
  Alcotest.(check bool) "enough sessions to shard" true
    (List.length sessions > 8);
  let sequential = Replay.replay_all trace sessions in
  List.iter
    (fun domains ->
      check_bit_identical
        (Printf.sprintf "replay_all ~domains:%d" domains)
        sequential
        (Replay.replay_all ~domains trace sessions))
    [ 1; 2; 4 ]

let test_replay_determinism_workload () =
  match Workload.record Workload.circuit with
  | Error msg -> Alcotest.fail msg
  | Ok run ->
      let trace = run.Workload.trace in
      let sequential = Replay.discover_and_replay trace in
      List.iter
        (fun domains ->
          check_bit_identical
            (Printf.sprintf "discover_and_replay ~domains:%d" domains)
            sequential
            (Replay.discover_and_replay ~domains trace))
        [ 1; 2; 4 ]

let test_replay_shared_pool () =
  let trace = synthetic_trace () in
  let sessions = Discovery.discover trace in
  let sequential = Replay.replay_all trace sessions in
  Domain_pool.with_pool ~domains:3 (fun pool ->
      (* Two consecutive replays on the same pool (the experiment's phase-2
         pattern) both match the sequential engine. *)
      check_bit_identical "first replay on shared pool" sequential
        (Replay.replay_all ~pool trace sessions);
      check_bit_identical "second replay on shared pool" sequential
        (Replay.replay_all ~pool trace sessions))

(* --- parallel index build --- *)

let test_parallel_index_build () =
  (* The chunked build must be structurally identical (and therefore
     byte-identical through the codec) to the serial build, on a trace
     comfortably above the parallelism threshold. *)
  let module Write_index = Ebp_trace.Write_index in
  let b = Trace.Builder.create ~hint:30_005 () in
  let prng = Prng.create 0x1d5 in
  let obj = Object_desc.Global { var = "g" } in
  Trace.Builder.add_install b obj (iv 0x1000 0x1fff);
  for i = 0 to 29_999 do
    let lo = 0x800 + (4 * Prng.int prng 0x600) in
    Trace.Builder.add_write b (iv lo (lo + 3)) ~pc:(i mod 97)
  done;
  Trace.Builder.add_remove b obj (iv 0x1000 0x1fff);
  let trace = Trace.Builder.finish b in
  let page_sizes = Replay.default_page_sizes in
  let serial = Write_index.build ~page_sizes trace in
  List.iter
    (fun domains ->
      Domain_pool.with_pool ~domains (fun pool ->
          let parallel = Write_index.build ~pool ~page_sizes trace in
          Alcotest.(check bool)
            (Printf.sprintf "structural identity on %d domains" domains)
            true
            (Write_index.equal serial parallel);
          Alcotest.(check string)
            (Printf.sprintf "byte identity on %d domains" domains)
            (Digest.to_hex (Digest.string (Write_index.encode serial)))
            (Digest.to_hex (Digest.string (Write_index.encode parallel)))))
    [ 1; 2; 4 ]

(* --- trace cache --- *)

let with_temp_cache_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ebp-test-cache-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_cache_roundtrip () =
  with_temp_cache_dir (fun dir ->
      let trace = synthetic_trace () in
      let key = Trace_cache.make_key ~name:"t" ~source:"src" ~seed:1 () in
      Alcotest.(check bool) "miss before store" true
        (Trace_cache.lookup ~dir ~key = None);
      (match Trace_cache.store ~dir ~key ~meta:"0x1.8p3" trace with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("store: " ^ msg));
      match Trace_cache.lookup ~dir ~key with
      | None -> Alcotest.fail "lookup after store"
      | Some (loaded, meta) ->
          Alcotest.(check string) "meta preserved" "0x1.8p3" meta;
          Alcotest.(check int) "event count" (Trace.length trace)
            (Trace.length loaded);
          (* A warm hit comes from the mmap'd sidecar, not a decode... *)
          Alcotest.(check bool) "hit is mapped" true (Trace.is_mapped loaded);
          (* ...while the decoded tier still serves a heap copy. *)
          (match Trace_cache.lookup_decoded ~dir ~key with
          | None -> Alcotest.fail "decoded lookup after store"
          | Some (decoded, meta') ->
              Alcotest.(check string) "decoded meta" "0x1.8p3" meta';
              Alcotest.(check bool) "decoded tier is heap" false
                (Trace.is_mapped decoded));
          (* The cached trace replays to the very same counting variables. *)
          check_same_counts "replay of cached trace"
            (Replay.discover_and_replay trace)
            (Replay.discover_and_replay loaded))

let test_cache_key_sensitivity () =
  let base = Trace_cache.make_key ~name:"w" ~source:"int x;" ~seed:7 () in
  Alcotest.(check bool) "same inputs, same key" true
    (base = Trace_cache.make_key ~name:"w" ~source:"int x;" ~seed:7 ());
  List.iter
    (fun (what, other) ->
      Alcotest.(check bool) (what ^ " changes the key") false (base = other))
    [
      ("name", Trace_cache.make_key ~name:"v" ~source:"int x;" ~seed:7 ());
      ("source", Trace_cache.make_key ~name:"w" ~source:"int y;" ~seed:7 ());
      ("seed", Trace_cache.make_key ~name:"w" ~source:"int x;" ~seed:8 ());
      ("fuel", Trace_cache.make_key ~name:"w" ~source:"int x;" ~seed:7 ~fuel:10 ());
    ]

let test_cache_corrupt_entry_is_miss () =
  with_temp_cache_dir (fun dir ->
      let key = Trace_cache.make_key ~name:"c" ~source:"s" ~seed:0 () in
      (match Trace_cache.store ~dir ~key (synthetic_trace ()) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("store: " ^ msg));
      let clobber suffix =
        let oc = open_out_bin (Filename.concat dir (key ^ suffix)) in
        output_string oc "EBPC1garbage";
        close_out oc
      in
      (* A corrupt sidecar is quarantined and masked by the decoded tier. *)
      clobber ".ebpt3";
      (match Trace_cache.lookup ~dir ~key with
      | None -> Alcotest.fail "decoded fallback should still hit"
      | Some (loaded, _) ->
          Alcotest.(check bool) "fallback hit is decoded" false
            (Trace.is_mapped loaded));
      Alcotest.(check bool) "sidecar quarantined" true
        (Sys.file_exists (Filename.concat dir (key ^ ".ebpt3.corrupt")));
      (* With the canonical entry corrupt too, the key reads as a miss. *)
      clobber ".trace";
      Alcotest.(check bool) "corrupt entry reads as a miss" true
        (Trace_cache.lookup ~dir ~key = None))

(* A fast private workload so the cache tests do not re-run a benchmark. *)
let tiny_workload =
  {
    Workload.name = "tiny-cache-test";
    description = "cache test";
    paper_analogue = "none";
    source =
      {|
int total;
int main() {
  int i;
  for (i = 0; i < 50; i = i + 1) { total = total + i; }
  print_int(total);
  return 0;
}
|};
    seed = 9;
    expected_output = Some "1225\n";
    event_hint = None;
  }

let test_record_cached_skips_execution () =
  with_temp_cache_dir (fun dir ->
      let cold =
        match Workload.record_cached ~cache_dir:dir tiny_workload with
        | Ok run -> run
        | Error msg -> Alcotest.fail msg
      in
      Alcotest.(check bool) "cold run executed the machine" true
        (cold.Workload.result <> None);
      let warm =
        match Workload.record_cached ~cache_dir:dir tiny_workload with
        | Ok run -> run
        | Error msg -> Alcotest.fail msg
      in
      (* result = None is the proof of zero phase-1 machine execution: only
         Loader.run can produce a run_result. *)
      Alcotest.(check bool) "warm run performed no machine execution" true
        (warm.Workload.result = None);
      Alcotest.(check int) "same events"
        (Trace.length cold.Workload.trace)
        (Trace.length warm.Workload.trace);
      Alcotest.(check (float 0.0)) "same base time" cold.Workload.base_ms
        warm.Workload.base_ms;
      check_same_counts "identical replay from the cached trace"
        (Replay.discover_and_replay cold.Workload.trace)
        (Replay.discover_and_replay warm.Workload.trace))

let test_cache_entries_and_clear () =
  with_temp_cache_dir (fun dir ->
      Alcotest.(check int) "missing dir lists nothing" 0
        (List.length (Trace_cache.entries ~dir:(Filename.concat dir "absent")));
      let trace = synthetic_trace () in
      let key = Trace_cache.make_key ~name:"e" ~source:"s" ~seed:1 () in
      (match Trace_cache.store ~dir ~key trace with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      let index = Ebp_trace.Write_index.build ~page_sizes:[ 4096 ] trace in
      (match Trace_cache.store_index ~dir ~key ~page_sizes:[ 4096 ] index with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      let es = Trace_cache.entries ~dir in
      let kinds = List.map (fun e -> e.Trace_cache.entry_kind) es in
      Alcotest.(check int) "three entries" 3 (List.length es);
      Alcotest.(check bool) "one trace, one columnar, one index" true
        (List.mem Trace_cache.Trace_entry kinds
        && List.mem Trace_cache.Columnar_entry kinds
        && List.mem Trace_cache.Index_entry kinds);
      Alcotest.(check bool) "sizes recorded" true
        (List.for_all (fun e -> e.Trace_cache.entry_bytes > 0) es);
      let removed, reclaimed = Trace_cache.clear ~dir in
      Alcotest.(check int) "clear removes all three" 3 removed;
      Alcotest.(check int) "clear reclaims their bytes"
        (List.fold_left (fun acc e -> acc + e.Trace_cache.entry_bytes) 0 es)
        reclaimed;
      Alcotest.(check int) "empty after clear" 0
        (List.length (Trace_cache.entries ~dir)))

let test_cache_gc_evicts_oldest () =
  with_temp_cache_dir (fun dir ->
      let trace = synthetic_trace () in
      let store name =
        let key = Trace_cache.make_key ~name ~source:"s" ~seed:1 () in
        (match Trace_cache.store ~dir ~key trace with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg);
        key
      in
      let k1 = store "first" and k2 = store "second" and k3 = store "third" in
      (* An orphaned temp file, as an interrupted store would leave. *)
      let tmp = Filename.concat dir ".deadbeef0000.tmp" in
      let oc = open_out_bin tmp in
      output_string oc "partial";
      close_out oc;
      (* Pin mtimes so age order (k2 oldest) differs from both store and
         name order — gc must follow mtime. *)
      let set_age key age =
        let t = Unix.gettimeofday () -. age in
        Unix.utimes (Filename.concat dir (key ^ ".trace")) t t
      in
      set_age k2 300.0;
      set_age k1 200.0;
      set_age k3 100.0;
      (* Each stored key owns a canonical entry plus a columnar sidecar;
         gc evicts whole ownership groups, so budget in group units. *)
      let size f = (Unix.stat (Filename.concat dir f)).Unix.st_size in
      let group_bytes = size (k1 ^ ".trace") + size (k1 ^ ".ebpt3") in
      (* Budget for two groups: gc drops the temp file and evicts exactly
         the oldest key's group. *)
      let removed, reclaimed =
        Trace_cache.gc ~dir ~max_bytes:(2 * group_bytes)
      in
      Alcotest.(check int) "removed temp file + oldest group" 3 removed;
      Alcotest.(check int) "reclaimed their bytes" (group_bytes + 7) reclaimed;
      Alcotest.(check bool) "temp file gone" true (not (Sys.file_exists tmp));
      Alcotest.(check bool) "oldest entry evicted" true
        (Trace_cache.lookup ~dir ~key:k2 = None);
      Alcotest.(check bool) "no orphaned sidecar left behind" true
        (not (Sys.file_exists (Filename.concat dir (k2 ^ ".ebpt3"))));
      Alcotest.(check bool) "newer entries survive" true
        (Trace_cache.lookup ~dir ~key:k1 <> None
        && Trace_cache.lookup ~dir ~key:k3 <> None);
      let removed, _ = Trace_cache.gc ~dir ~max_bytes:0 in
      Alcotest.(check int) "gc to zero removes the rest" 4 removed;
      Alcotest.(check (pair int int)) "nothing left to clear" (0, 0)
        (Trace_cache.clear ~dir))

let test_cache_gc_reclaims_orphans () =
  (* A sidecar or index whose owning trace entry is gone is an orphan:
     unreferenceable through any lookup key path once the canonical entry
     disappears, so gc must reclaim it regardless of the byte budget. *)
  with_temp_cache_dir (fun dir ->
      let trace = synthetic_trace () in
      let key = Trace_cache.make_key ~name:"orphan" ~source:"s" ~seed:1 () in
      (match Trace_cache.store ~dir ~key trace with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      let index = Ebp_trace.Write_index.build ~page_sizes:[ 4096 ] trace in
      (match Trace_cache.store_index ~dir ~key ~page_sizes:[ 4096 ] index with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      Alcotest.(check int) "trace + sidecar + index" 3
        (List.length (Trace_cache.entries ~dir));
      (* Orphan the artifacts by deleting the canonical trace entry. *)
      Sys.remove (Filename.concat dir (key ^ ".trace"));
      let removed, reclaimed = Trace_cache.gc ~dir ~max_bytes:max_int in
      Alcotest.(check int) "both orphans reclaimed" 2 removed;
      Alcotest.(check bool) "their bytes counted" true (reclaimed > 0);
      Alcotest.(check int) "cache empty" 0
        (List.length (Trace_cache.entries ~dir));
      (* A live key's artifacts are not orphans: re-store and re-index,
         then gc with an unlimited budget must keep everything. *)
      (match Trace_cache.store ~dir ~key trace with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      (match Trace_cache.store_index ~dir ~key ~page_sizes:[ 4096 ] index with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      Alcotest.(check (pair int int)) "live artifacts kept" (0, 0)
        (Trace_cache.gc ~dir ~max_bytes:max_int))

(* --- crash consistency ---

   Kill the store protocol at each of its injected sites in turn. The
   invariant: whatever litter the simulated crash leaves (an empty, a
   half-written, or a complete-but-unrenamed temp file), a lookup never
   observes a partial entry, [gc] reclaims the litter, and a re-run
   store lands the entry normally. *)
let kill_sites =
  [
    "trace_cache.store.kill_tmp";
    "trace_cache.store.kill_write";
    "trace_cache.store.kill_rename";
  ]

let count_kind ~dir kind =
  List.length
    (List.filter
       (fun e -> e.Trace_cache.entry_kind = kind)
       (Trace_cache.entries ~dir))

let test_store_crash_consistency () =
  let module Fault = Ebp_util.Fault in
  let trace = synthetic_trace () in
  let index = Ebp_trace.Write_index.build ~page_sizes:[ 4096 ] trace in
  List.iter
    (fun site ->
      List.iter
        (fun (what, store) ->
          with_temp_cache_dir (fun dir ->
              let key =
                Trace_cache.make_key ~name:(what ^ site) ~source:"s" ~seed:1 ()
              in
              Fault.configure
                [ { Fault.pattern = site; trigger = Fault.Nth 1; action = Fault.Kill } ];
              Fun.protect ~finally:Fault.reset (fun () ->
                  (match store ~dir ~key with
                  | (_ : (unit, string) result) ->
                      Alcotest.failf "%s: store survived the kill at %s" what
                        site
                  | exception Fault.Killed s ->
                      Alcotest.(check string) "killed at the site" site s);
                  Fault.reset ();
                  (* No partial entry is ever visible... *)
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: no entry after kill at %s" what site)
                    true
                    (Trace_cache.lookup ~dir ~key = None
                    && Trace_cache.lookup_index ~dir ~key ~page_sizes:[ 4096 ]
                       = None);
                  (* ...the crash left at most temp litter, which gc
                     reclaims... *)
                  let tmp_before = count_kind ~dir Trace_cache.Tmp_entry in
                  let removed, _ = Trace_cache.gc ~dir ~max_bytes:max_int in
                  Alcotest.(check int)
                    (Printf.sprintf "%s: gc reclaims the litter of %s" what
                       site)
                    tmp_before removed;
                  Alcotest.(check int) "no litter left" 0
                    (count_kind ~dir Trace_cache.Tmp_entry);
                  (* ...and the next (uninterrupted) store works. *)
                  match store ~dir ~key with
                  | Ok () -> ()
                  | Error msg -> Alcotest.failf "%s: re-store failed: %s" what msg)))
        [
          ("trace", fun ~dir ~key -> Trace_cache.store ~dir ~key trace);
          ( "index",
            fun ~dir ~key ->
              Trace_cache.store_index ~dir ~key ~page_sizes:[ 4096 ] index );
        ])
    kill_sites

let test_experiment_parallel_identical () =
  (* The whole engine end-to-end on one real workload: domains 1 vs 3 and
     cold vs warm cache must produce byte-identical experiment reports. *)
  with_temp_cache_dir (fun dir ->
      let run ?cache_dir ~domains () =
        match
          Ebp_core.Experiment.run ~workloads:[ Workload.circuit ] ~domains
            ?cache_dir ()
        with
        | Ok t -> Ebp_core.Experiment.full_report t
        | Error msg -> Alcotest.fail msg
      in
      let sequential = run ~domains:1 () in
      Alcotest.(check bool) "3-domain report identical" true
        (sequential = run ~domains:3 ());
      Alcotest.(check bool) "cold-cache report identical" true
        (sequential = run ~cache_dir:dir ~domains:2 ());
      Alcotest.(check bool) "warm-cache report identical" true
        (sequential = run ~cache_dir:dir ~domains:2 ()))

(* With seeded faults injected at every cache, codec, pool, and loader
   point, the experiment must still terminate and report bit-identically
   to the fault-free run: injected store failures degrade to re-recording,
   corrupted entries are quarantined and re-recorded, transient task and
   loader faults are retried by the pool. *)
let test_experiment_faulted_identical () =
  let module Fault = Ebp_util.Fault in
  let run ?cache_dir () =
    match
      Ebp_core.Experiment.run ~workloads:[ tiny_workload ] ~domains:2
        ?cache_dir ()
    with
    | Ok t -> Ebp_core.Experiment.full_report t
    | Error msg -> Alcotest.fail msg
  in
  let clean = run () in
  let spec =
    "seed=42;trace_cache.store.data:p=0.3:bitflip;\
     trace_cache.store.io:p=0.2:fail;trace_cache.lookup.data:p=0.2:bitflip;\
     trace.codec.decode:p=0.2:fail;write_index.codec.decode:p=0.2:fail;\
     pool.task:p=0.1:fail;loader.run:p=0.1:fail"
  in
  with_temp_cache_dir (fun dir ->
      (match Fault.configure_spec spec with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      Fun.protect ~finally:Fault.reset (fun () ->
          Alcotest.(check bool) "cold-cache faulted report identical" true
            (clean = run ~cache_dir:dir ());
          Alcotest.(check bool) "warm-cache faulted report identical" true
            (clean = run ~cache_dir:dir ());
          Alcotest.(check bool) "cache-free faulted report identical" true
            (clean = run ())))

let () =
  Alcotest.run "parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "empty and single batches" `Quick
            test_pool_empty_and_single;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "domain count clamped" `Quick
            test_pool_domains_clamped;
          Alcotest.test_case "contains injected faults" `Quick
            test_pool_contains_injected_faults;
          Alcotest.test_case "kill propagates" `Quick
            test_pool_kill_propagates;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "synthetic trace, domains 1/2/4" `Quick
            test_replay_determinism_synthetic;
          Alcotest.test_case "circuit workload, domains 1/2/4" `Slow
            test_replay_determinism_workload;
          Alcotest.test_case "shared pool across replays" `Quick
            test_replay_shared_pool;
          Alcotest.test_case "parallel index build identical" `Quick
            test_parallel_index_build;
        ] );
      ( "trace_cache",
        [
          Alcotest.test_case "round-trip" `Quick test_cache_roundtrip;
          Alcotest.test_case "key sensitivity" `Quick test_cache_key_sensitivity;
          Alcotest.test_case "corrupt entry is a miss" `Quick
            test_cache_corrupt_entry_is_miss;
          Alcotest.test_case "warm hit skips execution" `Quick
            test_record_cached_skips_execution;
          Alcotest.test_case "entries and clear" `Quick
            test_cache_entries_and_clear;
          Alcotest.test_case "gc evicts oldest first" `Quick
            test_cache_gc_evicts_oldest;
          Alcotest.test_case "gc reclaims orphaned artifacts" `Quick
            test_cache_gc_reclaims_orphans;
          Alcotest.test_case "store crash consistency" `Quick
            test_store_crash_consistency;
          Alcotest.test_case "experiment engines agree" `Slow
            test_experiment_parallel_identical;
          Alcotest.test_case "experiment identical under faults" `Quick
            test_experiment_faulted_identical;
        ] );
    ]
