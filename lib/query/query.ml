(* The query subsystem's front door: parse (with diagnostics, a fault
   point, and query.* metrics), choose an engine (planner-costed under
   Auto, exactly like replay's --engine auto), execute, and render —
   one shared render path, so byte-identical output across engines
   follows from the engines agreeing on the canonical Qresult. *)

module Trace = Ebp_trace.Trace
module W = Ebp_trace.Write_index
module Planner = Ebp_sessions.Planner
module Metrics = Ebp_obs.Metrics
module Span = Ebp_obs.Span
module Json = Ebp_obs.Json

let p_parse = Ebp_util.Fault.point "query.parse"
let m_runs = Metrics.counter "query.runs"
let m_parse_errors = Metrics.counter "query.parse_errors"

(* Same counter names Planner.replay uses — registration is idempotent,
   so query decisions and replay decisions share the cells. *)

type engine = Auto | Indexed | Scan

let engine_of_string = function
  | "auto" -> Ok Auto
  | "indexed" -> Ok Indexed
  | "scan" -> Ok Scan
  | s -> Error (Printf.sprintf "unknown engine %S (expected auto, indexed, or scan)" s)

let parse source : (Ast.query, Parser.error) result =
  Span.with_span "query.parse" @@ fun () ->
  Ebp_util.Fault.check p_parse;
  match Parser.parse source with
  | Ok q -> Ok q
  | Error e ->
      Metrics.incr m_parse_errors;
      Error e

(* The planner prices replay work in sessions; a query's analogue is how
   many index-backed lookups it compiles to — its atoms, plus a few for
   the per-object join of [group by object]. *)
let planner_sessions (q : Ast.query) =
  let rec atoms = function
    | Ast.All -> 0
    | Ast.Pc_cmp _ | Ast.Pc_in _ | Ast.Addr_in _ | Ast.Time_in _ | Ast.Live _ -> 1
    | Ast.And (a, b) | Ast.Or (a, b) -> atoms a + atoms b
    | Ast.Not a -> atoms a
  in
  max 1 (atoms q.pred + if q.group = Some Ast.G_object then 4 else 0)

type execution = {
  raw : Qresult.raw;
  engine_used : string;  (* "indexed" or "scan" *)
  planned : Planner.estimate option;  (* Some under Auto *)
}

let run ?(engine = Auto) ?index ?(index_source = Planner.no_index_cache) ?pool
    ?reason ?log trace (q : Ast.query) : execution =
  Span.with_span "query.run" @@ fun () ->
  Metrics.incr m_runs;
  let run_scan () = Scan_engine.run trace q in
  let run_indexed () =
    let idx =
      match index with
      | Some i -> i
      | None -> (
          match index_source.Planner.load () with
          | Some i -> i
          | None ->
              let i =
                W.build ?pool ~page_sizes:Ebp_sessions.Replay.default_page_sizes
                  trace
              in
              index_source.Planner.store i;
              i)
    in
    Compiled.run trace idx q
  in
  match engine with
  | Scan -> { raw = run_scan (); engine_used = "scan"; planned = None }
  | Indexed -> { raw = run_indexed (); engine_used = "indexed"; planned = None }
  | Auto -> (
      let est =
        Planner.estimate ?reason ~events:(Trace.length trace)
          ~sessions:(planner_sessions q) ~domains:1
          ~cached_index:(index <> None || index_source.Planner.cached)
          ()
      in
      Planner.record_decision est;
      Option.iter (fun log -> log (Planner.log_line est)) log;
      match est.choice with
      | Planner.Use_scan ->
          { raw = run_scan (); engine_used = "scan"; planned = Some est }
      | Planner.Build_index | Planner.Reuse_index ->
          { raw = run_indexed (); engine_used = "indexed"; planned = Some est })

(* Run both engines and assert agreement — the differential check the
   fuzzer, tests, and [--check] go through. *)
let check_engines ?index ?pool trace (q : Ast.query) : (execution, string) result
    =
  let indexed = run ~engine:Indexed ?index ?pool trace q in
  let scan = run ~engine:Scan trace q in
  if Qresult.equal indexed.raw scan.raw then Ok indexed
  else
    Error
      (Printf.sprintf "engines disagree on %S: indexed %s, scan %s"
         (Ast.to_string q)
         (Qresult.to_debug_string indexed.raw)
         (Qresult.to_debug_string scan.raw))

(* --- rendering (shared by both engines and all surfaces) --- *)

type format = Table | Ndjson

let format_of_string = function
  | "table" -> Ok Table
  | "ndjson" -> Ok Ndjson
  | s -> Error (Printf.sprintf "unknown format %S (expected table or ndjson)" s)

let group_key_name = function Ast.G_object -> "object" | Ast.G_pc -> "pc"

let group_key_cell trace (q : Ast.query) ordinal =
  match q.group with
  | Some Ast.G_object ->
      Ebp_trace.Object_desc.to_string (Trace.object_of_id trace ordinal)
  | _ -> string_of_int ordinal

let count_header (q : Ast.query) =
  match q.agg with
  | Ast.Count -> "count"
  | Ast.Count_distinct Ast.D_pc -> "distinct_pc"
  | Ast.Count_distinct Ast.D_word -> "distinct_word"

let render ~format trace (q : Ast.query) (raw : Qresult.raw) : string =
  let groups rows = Qresult.sort_groups ?top:q.top rows in
  match format with
  | Table -> (
      let table header rows = Ebp_util.Text_table.render ~header ~rows () in
      match raw with
      | Qresult.Count n -> table [ count_header q ] [ [ string_of_int n ] ]
      | Qresult.Groups rows ->
          table
            [ group_key_name (Option.get q.group); "count" ]
            (List.map
               (fun (k, c) -> [ group_key_cell trace q k; string_of_int c ])
               (groups rows))
      | Qresult.Buckets rows ->
          table [ "bucket"; "count" ]
            (List.map
               (fun (b, c) -> [ string_of_int b; string_of_int c ])
               rows))
  | Ndjson ->
      let lines =
        match raw with
        | Qresult.Count n -> [ Json.Obj [ (count_header q, Json.Int n) ] ]
        | Qresult.Groups rows ->
            let key = group_key_name (Option.get q.group) in
            List.map
              (fun (k, c) ->
                let kv =
                  match q.group with
                  | Some Ast.G_object -> Json.Str (group_key_cell trace q k)
                  | _ -> Json.Int k
                in
                Json.Obj [ (key, kv); ("count", Json.Int c) ])
              (groups rows)
        | Qresult.Buckets rows ->
            List.map
              (fun (b, c) ->
                Json.Obj [ ("bucket", Json.Int b); ("count", Json.Int c) ])
              rows
      in
      String.concat "" (List.map (fun j -> Json.to_string j ^ "\n") lines)
