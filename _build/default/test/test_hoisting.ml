(* Tests for the §9 CodePatch loop-hoisting optimization: Ebp_isa.Cfg loop
   analysis and Ebp_wms.Hoisted_code_patch, including hit-for-hit
   equivalence with plain CodePatch under adversarial schedules (monitors
   armed and disarmed while loops are running). *)

module Interval = Ebp_util.Interval
module Instr = Ebp_isa.Instr
module Reg = Ebp_isa.Reg
module Program = Ebp_isa.Program
module Cfg = Ebp_isa.Cfg
module Machine = Ebp_machine.Machine
module Hcp = Ebp_wms.Hoisted_code_patch
module Cp = Ebp_wms.Code_patch
module Wms = Ebp_wms.Wms
module Debugger = Ebp_core.Debugger
module Loader = Ebp_runtime.Loader

let assemble src =
  match Ebp_isa.Asm.parse_resolved src with
  | Ok p -> p
  | Error e -> Alcotest.failf "assembly error: %s" e

(* --- Cfg --- *)

let simple_loop_src =
  {|
  li t0, 0
  li t1, 10
loop:
  addi t0, t0, 1
  blt t0, t1, loop
  halt
|}

let test_cfg_simple_loop () =
  let p = assemble simple_loop_src in
  match Cfg.loops p with
  | [ { Cfg.header = 2; back_edge = 3 } ] -> ()
  | ls -> Alcotest.failf "expected one loop [2,3], got %d" (List.length ls)

let test_cfg_rejects_calls () =
  let p =
    assemble
      {|
  li t0, 0
loop:
  jal f
  addi t0, t0, 1
  blt t0, zero, loop
  halt
f:
  ret
|}
  in
  Alcotest.(check int) "loop with call rejected" 0 (List.length (Cfg.loops p))

let test_cfg_rejects_header_zero () =
  let p = assemble "loop:\n  addi t0, t0, 1\n  jmp loop\n" in
  Alcotest.(check int) "header 0 rejected" 0 (List.length (Cfg.loops p))

let test_cfg_nested_loops () =
  let p =
    assemble
      {|
  li t0, 0
outer:
  li t1, 0
inner:
  addi t1, t1, 1
  blt t1, t2, inner
  addi t0, t0, 1
  blt t0, t3, outer
  halt
|}
  in
  let ls = Cfg.loops p in
  Alcotest.(check int) "two loops" 2 (List.length ls);
  (* Sorted innermost first. *)
  (match ls with
  | [ a; b ] ->
      Alcotest.(check bool) "inner smaller" true
        (a.Cfg.back_edge - a.Cfg.header < b.Cfg.back_edge - b.Cfg.header);
      Alcotest.(check int) "inner header" 2 a.Cfg.header
  | _ -> Alcotest.fail "expected two loops");
  (* innermost_containing picks the small one for an inner index. *)
  match Cfg.innermost_containing ls 3 with
  | Some l -> Alcotest.(check int) "innermost of idx 3" 2 l.Cfg.header
  | None -> Alcotest.fail "no loop found"

let test_cfg_defined_regs () =
  Alcotest.(check bool) "li defines rd" true
    (List.exists (Reg.equal (Reg.t_ 0)) (Cfg.defined_regs (Instr.Li (Reg.t_ 0, 1))));
  Alcotest.(check bool) "store defines nothing" true
    (Cfg.defined_regs (Instr.Sw (Reg.t_ 0, Reg.fp, 0)) = []);
  Alcotest.(check bool) "jal defines ra" true
    (List.exists (Reg.equal Reg.ra) (Cfg.defined_regs (Instr.Jal (Instr.Abs 0))));
  Alcotest.(check bool) "syscall defines v0" true
    (List.exists (Reg.equal Reg.v0) (Cfg.defined_regs (Instr.Syscall 3)))

let test_cfg_invariance () =
  let p = assemble simple_loop_src in
  Alcotest.(check bool) "t0 varies" false (Cfg.reg_invariant p ~lo:2 ~hi:3 (Reg.t_ 0));
  Alcotest.(check bool) "t1 invariant" true (Cfg.reg_invariant p ~lo:2 ~hi:3 (Reg.t_ 1));
  Alcotest.(check bool) "zero always invariant" true
    (Cfg.reg_invariant p ~lo:0 ~hi:4 Reg.zero)

(* --- instrumentation structure --- *)

let hoistable_src =
  {|
  li t1, 8192      ; invariant base
  li t0, 0
loop:
  sw t0, 0(t1)     ; hoistable: t1 invariant in loop
  add t2, t1, t0
  sw t0, 0(t2)     ; not hoistable: t2 redefined each iteration
  addi t0, t0, 4
  blt t0, t3, loop
  sw t0, 4(t1)     ; outside any loop: plain
  halt
|}

let test_instrument_classification () =
  let p = assemble hoistable_src in
  let patched = Hcp.instrument p in
  Alcotest.(check int) "three stores" 3 (Hcp.patched_stores patched);
  Alcotest.(check int) "one hoisted" 1 (Hcp.hoisted_stores patched);
  Alcotest.(check int) "one loop optimized" 1 (Hcp.loops_optimized patched);
  Alcotest.(check bool) "expansion grew" true (Hcp.expansion patched > 1.0)

let test_instrument_no_loops_degenerates_to_cp () =
  let src = "  li t1, 8192\n  sw t0, 0(t1)\n  halt\n" in
  let p = assemble src in
  let patched = Hcp.instrument p in
  Alcotest.(check int) "nothing hoisted" 0 (Hcp.hoisted_stores patched);
  (* Same instruction count as plain CodePatch on the same input. *)
  Alcotest.(check int) "same size as CP"
    (Program.length (Cp.program (Cp.instrument p)))
    (Program.length (Hcp.program patched))

(* --- semantics: same final memory as the unpatched program --- *)

let run_to_halt prog ~with_chk_handler =
  let m = Machine.create prog in
  if with_chk_handler then Machine.set_chk_handler m (Some (fun _ ~range:_ ~pc:_ -> ()));
  (match Machine.run m with
  | Machine.Halted _ -> ()
  | Machine.Out_of_fuel -> Alcotest.fail "fuel"
  | Machine.Machine_error e -> Alcotest.fail e);
  m

let test_patched_program_same_memory () =
  let p = assemble hoistable_src in
  (* Give t3 a bound via an initial li: patch the source instead. *)
  let src_with_bound =
    {|
  li t3, 40
  li t1, 8192
  li t0, 0
loop:
  sw t0, 0(t1)
  add t2, t1, t0
  sw t0, 0(t2)
  addi t0, t0, 4
  blt t0, t3, loop
  sw t0, 4(t1)
  halt
|}
  in
  let p = ignore p; assemble src_with_bound in
  let patched = Hcp.instrument p in
  let m_plain = run_to_halt p ~with_chk_handler:false in
  let m_patched = run_to_halt (Hcp.program patched) ~with_chk_handler:true in
  for i = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "word %d" i)
      (Ebp_machine.Memory.load_word (Machine.memory m_plain) (8192 + (4 * i)))
      (Ebp_machine.Memory.load_word (Machine.memory m_patched) (8192 + (4 * i)))
  done

(* --- equivalence with plain CodePatch through the Debugger --- *)

let hits_of kind src ~watch =
  let d =
    match Debugger.load_source ~strategy:kind src with
    | Ok d -> d
    | Error e -> Alcotest.failf "compile: %s" e
  in
  watch d;
  let r = Debugger.run d in
  (match r.Loader.status with
  | Machine.Halted 0 -> ()
  | _ -> Alcotest.fail "program failed");
  Alcotest.(check (list string)) "no errors" [] (Debugger.errors d);
  ( List.map
      (fun (h : Debugger.hit) -> (h.Debugger.pc, Interval.lo h.Debugger.write))
      (Debugger.hits d),
    Debugger.cycles d )

let check_equivalent name src watch =
  let cp_hits, cp_cycles = hits_of Debugger.Code_patch src ~watch in
  let hcp_hits, hcp_cycles = hits_of Debugger.Code_patch_hoisted src ~watch in
  Alcotest.(check (list (pair int int))) (name ^ ": identical hits") cp_hits hcp_hits;
  (cp_cycles, hcp_cycles)

let test_equiv_global_in_loop () =
  (* The watched global is written every iteration: flags stay armed, so
     hoisting saves nothing on it but must not lose notifications. *)
  let src =
    {|
int g;
int main() {
  int i;
  for (i = 0; i < 100; i = i + 1) {
    g = g + i;
  }
  print_int(g);
  return 0;
}
|}
  in
  let _ =
    check_equivalent "armed loop" src (fun d ->
        Result.get_ok (Debugger.watch_global d "g"))
  in
  ()

let test_equiv_unwatched_loop_saves_cycles () =
  (* Nothing watched inside the hot loop: every hoisted store skips its
     lookup, so hoisted CP must be strictly cheaper. *)
  let src =
    {|
int g;
int sink[8];
int main() {
  int i;
  int acc;
  acc = 0;
  for (i = 0; i < 500; i = i + 1) {
    acc = acc + i;
    sink[i % 8] = acc;
  }
  g = acc;
  print_int(acc);
  return 0;
}
|}
  in
  let cp, hcp =
    check_equivalent "cold loop" src (fun d ->
        Result.get_ok (Debugger.watch_global d "g"))
  in
  Alcotest.(check bool)
    (Printf.sprintf "hoisting cheaper (cp=%d hcp=%d)" cp hcp)
    true (hcp < cp)

let test_equiv_monitor_armed_mid_loop () =
  (* The heap watch arms at an allocation *inside* the loop, after several
     iterations have already run with clear flags. The install-refresh
     path must rearm the flags so later iterations notify. *)
  let src =
    {|
int keep[16];
int main() {
  int i;
  int* p;
  int* q;
  p = 0;
  for (i = 0; i < 16; i = i + 1) {
    if (i == 5) {
      p = malloc(8);
    }
    if (p != 0) {
      p[0] = i;          // pointer invariant once set? p reloaded each iter
    }
    keep[i] = i;
  }
  q = p;
  free(q);
  print_int(1);
  return 0;
}
|}
  in
  let _ =
    check_equivalent "mid-loop arming" src (fun d ->
        Debugger.watch_alloc d ~site:"main" ~nth:1)
  in
  ()

let test_equiv_monitor_removed_mid_loop () =
  (* The watched object is freed inside the loop: flags must disarm. *)
  let src =
    {|
int main() {
  int i;
  int* p;
  p = malloc(8);
  for (i = 0; i < 12; i = i + 1) {
    if (i < 6) {
      p[0] = i;
    }
    if (i == 6) {
      free(p);
    }
  }
  print_int(i);
  return 0;
}
|}
  in
  let _ =
    check_equivalent "mid-loop disarm" src (fun d ->
        Debugger.watch_alloc d ~site:"main" ~nth:1)
  in
  ()

let test_equiv_local_watch () =
  (* Local-variable watches arm at function entry and disarm on return,
     driving install/remove churn across loop executions. *)
  let src =
    {|
int work(int n) {
  int acc;
  int i;
  acc = 0;
  for (i = 0; i < n; i = i + 1) {
    acc = acc + i;
  }
  return acc;
}
int main() {
  int total;
  int r;
  total = 0;
  for (r = 0; r < 5; r = r + 1) {
    total = total + work(10 + r);
  }
  print_int(total);
  return 0;
}
|}
  in
  let _ =
    check_equivalent "local watch" src (fun d ->
        Result.get_ok (Debugger.watch_local d ~func:"work" ~var:"acc"))
  in
  ()

let test_equiv_on_workload () =
  (* A whole benchmark program: the lattice workload under a global watch. *)
  let src = Ebp_workloads.Workload.lattice.Ebp_workloads.Workload.source in
  let cp, hcp =
    check_equivalent "lattice workload" src (fun d ->
        Result.get_ok (Debugger.watch_global d "sweep_count"))
  in
  Alcotest.(check bool)
    (Printf.sprintf "hoisting helps on lattice (cp=%d hcp=%d)" cp hcp)
    true (hcp < cp)

(* --- strategy accounting --- *)

let test_skip_accounting () =
  let src =
    {|
int g;
int main() {
  int i;
  int acc;
  acc = 0;
  for (i = 0; i < 50; i = i + 1) {
    acc = acc + i;
  }
  g = acc;
  print_int(acc);
  return 0;
}
|}
  in
  let compiled =
    match Ebp_lang.Compiler.compile src with Ok c -> c | Error e -> Alcotest.fail e
  in
  let patched = Hcp.instrument compiled.Ebp_lang.Compiler.program in
  Alcotest.(check bool) "some stores hoisted" true (Hcp.hoisted_stores patched > 0);
  let loader =
    Loader.load
      { Ebp_lang.Compiler.program = Hcp.program patched;
        debug = compiled.Ebp_lang.Compiler.debug }
  in
  let machine = Loader.machine loader in
  let t = Hcp.attach patched machine ~notify:(fun _ -> ()) in
  let s = Hcp.strategy t in
  (* Watch g so the map is non-empty but the loop stores stay cold. *)
  let g = Ebp_lang.Debug_info.global_by_name compiled.Ebp_lang.Compiler.debug "g" in
  let g = Option.get g in
  (match
     s.Wms.install
       (Interval.of_base_size ~base:g.Ebp_lang.Debug_info.g_addr
          ~size:g.Ebp_lang.Debug_info.g_size)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let r = Loader.run loader in
  (match r.Loader.status with
  | Machine.Halted 0 -> ()
  | _ -> Alcotest.fail "run failed");
  Alcotest.(check bool) "pre-checks ran" true (Hcp.pre_checks_executed t > 0);
  Alcotest.(check bool) "lookups were skipped" true (Hcp.guarded_checks_skipped t > 50);
  Alcotest.(check int) "the g store still hit" 1 (Hcp.stats t).Wms.hits

let () =
  Alcotest.run "hoisting"
    [
      ( "cfg",
        [
          Alcotest.test_case "simple loop" `Quick test_cfg_simple_loop;
          Alcotest.test_case "rejects calls" `Quick test_cfg_rejects_calls;
          Alcotest.test_case "rejects header 0" `Quick test_cfg_rejects_header_zero;
          Alcotest.test_case "nested loops" `Quick test_cfg_nested_loops;
          Alcotest.test_case "defined regs" `Quick test_cfg_defined_regs;
          Alcotest.test_case "invariance" `Quick test_cfg_invariance;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "classification" `Quick test_instrument_classification;
          Alcotest.test_case "no loops = plain CP" `Quick
            test_instrument_no_loops_degenerates_to_cp;
          Alcotest.test_case "memory semantics" `Quick test_patched_program_same_memory;
        ] );
      ( "equivalence with CodePatch",
        [
          Alcotest.test_case "armed loop" `Quick test_equiv_global_in_loop;
          Alcotest.test_case "cold loop saves cycles" `Quick
            test_equiv_unwatched_loop_saves_cycles;
          Alcotest.test_case "arming mid-loop" `Quick test_equiv_monitor_armed_mid_loop;
          Alcotest.test_case "disarming mid-loop" `Quick
            test_equiv_monitor_removed_mid_loop;
          Alcotest.test_case "local watch churn" `Quick test_equiv_local_watch;
          Alcotest.test_case "lattice workload" `Slow test_equiv_on_workload;
        ] );
      ("accounting", [ Alcotest.test_case "skips counted" `Quick test_skip_accounting ]);
    ]
