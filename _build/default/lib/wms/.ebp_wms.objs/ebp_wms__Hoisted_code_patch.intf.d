lib/wms/hoisted_code_patch.mli: Ebp_isa Ebp_machine Timing Wms
