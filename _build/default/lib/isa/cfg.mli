(** Control-flow analysis: loop detection and register invariance.

    Supports the CodePatch loop-hoisting optimization sketched in the
    paper's §9: "a preliminary check outside the loop may be applied for
    write instructions whose target is a loop-invariant memory range".

    Loop detection is deliberately conservative. A candidate loop is a
    backward control transfer at index [back_edge] to a [header] at a lower
    index; it is accepted only when the contiguous region
    [[header, back_edge]] is self-contained:

    - no instruction inside the region branches to an index below the
      header or into a different backward region;
    - no instruction outside the region branches {e into} its interior
      (branches to the header itself are entry edges and are fine);
    - the region contains no calls or returns ([Jal]/[Jalr]/[Ret]) — a
      call could write any register or memory, defeating invariance;
    - the header is not instruction 0 (there must be room for a preheader
      edge).

    Structured code produced by the MiniC compiler always satisfies these
    conditions for its [while]/[for] loops; arbitrary assembly that does
    not is simply left unoptimized. *)

type loop = {
  header : int;  (** first instruction of the loop body *)
  back_edge : int;  (** index of the backward branch to [header] *)
}

val loops : Program.t -> loop list
(** Accepted loops, sorted by ascending body size (innermost first for
    nests). At most one loop per header is reported (the smallest).
    The program must be resolved. *)

val innermost_containing : loop list -> int -> loop option
(** Smallest accepted loop whose body [[header, back_edge]] contains the
    instruction index. *)

val defined_regs : Instr.t -> Reg.t list
(** Registers an instruction may write. [Syscall] is credited with [v0]
    and [v1] (the runtime ABI's result registers); [Jal]/[Jalr] with [ra]. *)

val reg_invariant : Program.t -> lo:int -> hi:int -> Reg.t -> bool
(** Is the register never written by instructions in [[lo, hi]]? Register
    [zero] is always invariant. *)
