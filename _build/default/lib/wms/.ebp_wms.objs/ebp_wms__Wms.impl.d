lib/wms/wms.ml: Ebp_util
