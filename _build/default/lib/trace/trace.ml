module Interval = Ebp_util.Interval

type event =
  | Install of { obj : Object_desc.t; range : Interval.t }
  | Remove of { obj : Object_desc.t; range : Interval.t }
  | Write of { range : Interval.t; pc : int }

(* Packed storage: 4 ints per event — tagged object word, lo, hi, pc.
   The tag lives in the low 2 bits of the first word; the object id (or 0
   for writes) in the remaining bits. *)
let stride = 4
let tag_install = 0
let tag_remove = 1
let tag_write = 2

type t = {
  data : int array;
  count : int;
  objs : Object_desc.t array;
}

module Builder = struct
  type t = {
    mutable data : int array;
    mutable count : int;
    mutable objs : Object_desc.t list;  (* reversed *)
    mutable obj_count : int;
    intern : (Object_desc.t, int) Hashtbl.t;
  }

  let create () =
    { data = Array.make 4096 0; count = 0; objs = []; obj_count = 0;
      intern = Hashtbl.create 64 }

  let ensure b =
    let needed = (b.count + 1) * stride in
    if needed > Array.length b.data then begin
      let bigger = Array.make (max needed (2 * Array.length b.data)) 0 in
      Array.blit b.data 0 bigger 0 (b.count * stride);
      b.data <- bigger
    end

  let intern b obj =
    match Hashtbl.find_opt b.intern obj with
    | Some id -> id
    | None ->
        let id = b.obj_count in
        Hashtbl.add b.intern obj id;
        b.objs <- obj :: b.objs;
        b.obj_count <- id + 1;
        id

  let push b w0 lo hi pc =
    ensure b;
    let base = b.count * stride in
    b.data.(base) <- w0;
    b.data.(base + 1) <- lo;
    b.data.(base + 2) <- hi;
    b.data.(base + 3) <- pc;
    b.count <- b.count + 1

  let add_install b obj range =
    push b
      ((intern b obj lsl 2) lor tag_install)
      (Interval.lo range) (Interval.hi range) (-1)

  let add_remove b obj range =
    push b
      ((intern b obj lsl 2) lor tag_remove)
      (Interval.lo range) (Interval.hi range) (-1)

  let add_write b range ~pc =
    push b tag_write (Interval.lo range) (Interval.hi range) pc

  let length b = b.count

  let finish b =
    {
      data = Array.sub b.data 0 (b.count * stride);
      count = b.count;
      objs = Array.of_list (List.rev b.objs);
    }
end

let length t = t.count

let get t i =
  if i < 0 || i >= t.count then invalid_arg "Trace.get: index out of range";
  let base = i * stride in
  let w0 = t.data.(base) in
  let tag = w0 land 3 in
  let range = Interval.make ~lo:t.data.(base + 1) ~hi:t.data.(base + 2) in
  if tag = tag_write then Write { range; pc = t.data.(base + 3) }
  else
    let obj = t.objs.(w0 lsr 2) in
    if tag = tag_install then Install { obj; range } else Remove { obj; range }

let iter t f =
  for i = 0 to t.count - 1 do
    f (get t i)
  done

let iter_raw t f =
  let data = t.data in
  for i = 0 to t.count - 1 do
    let base = i * stride in
    let w0 = Array.unsafe_get data base in
    let tag = w0 land 3 in
    f ~tag
      ~obj:(if tag = tag_write then -1 else w0 lsr 2)
      ~lo:(Array.unsafe_get data (base + 1))
      ~hi:(Array.unsafe_get data (base + 2))
      ~pc:(if tag = tag_write then Array.unsafe_get data (base + 3) else -1)
  done

let object_count t = Array.length t.objs
let object_of_id t id = t.objs.(id)
let objects t = Array.copy t.objs

type stats = {
  events : int;
  installs : int;
  removes : int;
  writes : int;
  distinct_objects : int;
  write_bytes : int;
}

let stats t =
  let installs = ref 0 and removes = ref 0 and writes = ref 0 and bytes = ref 0 in
  iter_raw t (fun ~tag ~obj:_ ~lo ~hi ~pc:_ ->
      if tag = tag_install then incr installs
      else if tag = tag_remove then incr removes
      else begin
        incr writes;
        bytes := !bytes + (hi - lo + 1)
      end);
  {
    events = t.count;
    installs = !installs;
    removes = !removes;
    writes = !writes;
    distinct_objects = Array.length t.objs;
    write_bytes = !bytes;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "events=%d installs=%d removes=%d writes=%d objects=%d write_bytes=%d"
    s.events s.installs s.removes s.writes s.distinct_objects s.write_bytes

(* --- text codec --- *)

let to_text t =
  let buf = Buffer.create (t.count * 24) in
  iter t (fun event ->
      (match event with
      | Install { obj; range } ->
          Buffer.add_string buf
            (Printf.sprintf "I %s %d %d" (Object_desc.to_string obj)
               (Interval.lo range) (Interval.hi range))
      | Remove { obj; range } ->
          Buffer.add_string buf
            (Printf.sprintf "R %s %d %d" (Object_desc.to_string obj)
               (Interval.lo range) (Interval.hi range))
      | Write { range; pc } ->
          Buffer.add_string buf
            (Printf.sprintf "W %d %d %d" (Interval.lo range) (Interval.hi range) pc));
      Buffer.add_char buf '\n');
  Buffer.contents buf

let of_text text =
  let b = Builder.create () in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None && String.trim line <> "" then
        let fail msg = error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg) in
        match String.split_on_char ' ' (String.trim line) with
        | [ "W"; lo; hi; pc ] -> (
            match (int_of_string_opt lo, int_of_string_opt hi, int_of_string_opt pc) with
            | Some lo, Some hi, Some pc when lo <= hi ->
                Builder.add_write b (Interval.make ~lo ~hi) ~pc
            | _ -> fail "bad write event")
        | [ tag; obj; lo; hi ] when tag = "I" || tag = "R" -> (
            match
              (Object_desc.of_string obj, int_of_string_opt lo, int_of_string_opt hi)
            with
            | Some obj, Some lo, Some hi when lo <= hi ->
                let range = Interval.make ~lo ~hi in
                if tag = "I" then Builder.add_install b obj range
                else Builder.add_remove b obj range
            | _ -> fail "bad install/remove event")
        | _ -> fail "unrecognized event")
    (String.split_on_char '\n' text);
  match !error with Some msg -> Error msg | None -> Ok (Builder.finish b)

(* --- binary codec --- *)

let magic = "EBPT1"

let write_binary oc t =
  output_string oc magic;
  let write_int v =
    (* 63-bit values, little-endian, 8 bytes. *)
    for i = 0 to 7 do
      output_byte oc ((v lsr (8 * i)) land 0xff)
    done
  in
  write_int (Array.length t.objs);
  Array.iter
    (fun obj ->
      let s = Object_desc.to_string obj in
      write_int (String.length s);
      output_string oc s)
    t.objs;
  write_int t.count;
  Array.iter write_int t.data

let read_binary ic =
  let read_exact n =
    let b = Bytes.create n in
    really_input ic b 0 n;
    Bytes.to_string b
  in
  let read_int () =
    let v = ref 0 in
    for i = 0 to 7 do
      v := !v lor (input_byte ic lsl (8 * i))
    done;
    !v
  in
  try
    if read_exact (String.length magic) <> magic then Error "bad trace magic"
    else begin
      let nobjs = read_int () in
      let objs =
        Array.init nobjs (fun _ ->
            let len = read_int () in
            read_exact len)
      in
      let objs =
        Array.map
          (fun s ->
            match Object_desc.of_string s with
            | Some o -> o
            | None -> raise Exit)
          objs
      in
      let count = read_int () in
      let data = Array.init (count * stride) (fun _ -> read_int ()) in
      Ok { data; count; objs }
    end
  with
  | Exit -> Error "bad object descriptor in trace"
  | End_of_file -> Error "truncated trace"
