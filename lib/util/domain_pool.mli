(** A small fixed-size pool of worker domains with a shared work queue.

    The experiment engine's unit of parallelism: a pool of [n] domains
    executes batches of independent tasks and returns their results in
    submission order, so callers get multicore wall-clock speedup with
    sequential semantics — the result of {!run} is {e identical} to
    [List.map (fun f -> f ()) tasks], whatever the interleaving.

    The calling domain participates in the work: a pool of [n] domains
    spawns only [n - 1] workers, and {!run} drains the queue from the
    caller too. A pool of one domain therefore spawns nothing and runs
    every task inline, making sequential execution the [domains = 1]
    special case rather than a separate code path.

    Pools are cheap but not free (each worker is an OS thread with its own
    minor heap); create one per experiment, share it across phases, and
    release it with {!shutdown} or, better, scope it with {!with_pool}.

    Concurrency contract: tasks must not block on other tasks of the same
    or a later batch, and {!run} must only be called from the domain that
    created the pool, one batch at a time. Tasks run on arbitrary domains,
    so they must not share mutable state without synchronization — the
    replay engine shares only an immutable trace. *)

type t
(** A pool of worker domains. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (clamped
    below at 1). Default: {!Domain.recommended_domain_count}, i.e. the
    hardware's available parallelism. *)

val domains : t -> int
(** Number of domains working for the pool, counting the caller. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run t tasks] executes every task, concurrently when the pool has more
    than one domain, and returns their results in submission order. If any
    task raises, the batch still runs to completion and the exception of
    the earliest-submitted failing task is re-raised in the caller.

    Fault containment: while fault injection is active
    ({!Ebp_util.Fault.active}), a task raising {!Ebp_util.Fault.Injected}
    — from the [pool.task] point or any point it evaluates — is retried
    in place (counted in [pool.task_retries]) instead of failing the
    batch, so tasks must be idempotent under injection.
    {!Ebp_util.Fault.Killed} and real exceptions propagate as above. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] is [run t (List.map (fun x () -> f x) xs)] — a parallel
    [List.map] preserving order. *)

val shutdown : t -> unit
(** Signals the workers to exit and joins them. Idempotent; the pool must
    not be used afterwards. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] scopes a pool: creates it, applies [f], and
    shuts it down even if [f] raises. *)
