examples/quickstart.ml: Ebp_core Ebp_isa Ebp_runtime Int List Option Printf
