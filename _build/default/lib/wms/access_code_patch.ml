module Interval = Ebp_util.Interval
module Instr = Ebp_isa.Instr
module Program = Ebp_isa.Program
module Machine = Ebp_machine.Machine

type access = Read | Write

type notification = { access : access; range : Interval.t; pc : int }

type patched = {
  prog : Program.t;
  original_length : int;
  store_count : int;
  load_count : int;
  (* Chk pc -> (access kind, original instruction index) *)
  check_sites : (int, access * int) Hashtbl.t;
}

let item instr = { Program.instr; implicit = false }

let access_parts = function
  | Instr.Sw (_, rs, off) -> Some (Write, rs, off, 4)
  | Instr.Sb (_, rs, off) -> Some (Write, rs, off, 1)
  | Instr.Lw (_, rs, off) -> Some (Read, rs, off, 4)
  | Instr.Lb (_, rs, off) -> Some (Read, rs, off, 1)
  | _ -> None

let instrument orig =
  if not (Program.is_resolved orig) then
    invalid_arg "Access_code_patch.instrument: program has unresolved labels";
  let original_length = Program.length orig in
  let check_sites = Hashtbl.create 128 in
  let stores = ref 0 and loads = ref 0 in
  (* Collect patch sites: explicit stores plus all loads. *)
  let sites = ref [] in
  for idx = Program.length orig - 1 downto 0 do
    match access_parts (Program.get orig idx) with
    | Some ((Write, _, _, _) as parts) when not (Program.implicit orig idx) ->
        incr stores;
        sites := (idx, parts) :: !sites
    | Some ((Read, _, _, _) as parts) ->
        incr loads;
        sites := (idx, parts) :: !sites
    | Some (Write, _, _, _) | None -> ()
  done;
  let prog =
    List.fold_left
      (fun prog (idx, (access, rs, off, width)) ->
        let instr = Program.get prog idx in
        let chk = item (Instr.Chk { base = rs; off; width }) in
        let back = item (Instr.Jmp (Instr.Abs (idx + 1))) in
        let stub =
          match access with
          | Write -> [ item instr; chk; back ]  (* notify after the write *)
          | Read -> [ chk; item instr; back ]  (* the load may clobber rs *)
        in
        let prog, s = Program.append prog stub in
        let chk_pc = match access with Write -> s + 1 | Read -> s in
        Hashtbl.replace check_sites chk_pc (access, idx);
        Program.set prog idx (Instr.Jmp (Instr.Abs s)))
      orig !sites
  in
  { prog; original_length; store_count = !stores; load_count = !loads; check_sites }

let program p = p.prog
let patched_stores p = p.store_count
let patched_loads p = p.load_count

let expansion p =
  float_of_int (Program.length p.prog) /. float_of_int p.original_length

type t = {
  machine : Machine.t;
  timing : Timing.t;
  read_map : Monitor_map.t;
  write_map : Monitor_map.t;
  patched : patched;
  notify : notification -> unit;
  mutable read_hits : int;
  mutable write_hits : int;
  mutable lookups : int;
}

let on_chk t machine ~range ~pc =
  Machine.charge machine (Timing.cycles t.timing.Timing.software_lookup_us);
  t.lookups <- t.lookups + 1;
  match Hashtbl.find_opt t.patched.check_sites pc with
  | Some (Read, orig) ->
      if Monitor_map.overlaps t.read_map range then begin
        t.read_hits <- t.read_hits + 1;
        t.notify { access = Read; range; pc = orig }
      end
  | Some (Write, orig) ->
      if Monitor_map.overlaps t.write_map range then begin
        t.write_hits <- t.write_hits + 1;
        t.notify { access = Write; range; pc = orig }
      end
  | None -> ()

let attach ?(timing = Timing.sparcstation2) patched machine ~notify =
  let t =
    {
      machine;
      timing;
      read_map = Monitor_map.create ();
      write_map = Monitor_map.create ();
      patched;
      notify;
      read_hits = 0;
      write_hits = 0;
      lookups = 0;
    }
  in
  Machine.set_chk_handler machine (Some (on_chk t));
  t

let maps t = function
  | `Read -> [ t.read_map ]
  | `Write -> [ t.write_map ]
  | `Both -> [ t.read_map; t.write_map ]

let install t ~on range =
  Machine.charge t.machine (Timing.cycles t.timing.Timing.software_update_us);
  List.iter (fun m -> Monitor_map.install m range) (maps t on);
  Ok ()

let remove t ~on range =
  Machine.charge t.machine (Timing.cycles t.timing.Timing.software_update_us);
  List.iter (fun m -> Monitor_map.remove m range) (maps t on);
  Ok ()

let read_hits t = t.read_hits
let write_hits t = t.write_hits
let lookups t = t.lookups
