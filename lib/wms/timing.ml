type t = {
  software_update_us : float;
  software_lookup_us : float;
  nh_fault_handler_us : float;
  vm_fault_handler_us : float;
  vm_protect_us : float;
  vm_unprotect_us : float;
  tp_fault_handler_us : float;
  context_switch_us : float;
  vb_exit_us : float;
  vb_view_switch_us : float;
  vb_view_update_us : float;
}

let sparcstation2 =
  {
    software_update_us = 22.0;
    software_lookup_us = 2.75;
    nh_fault_handler_us = 131.0;
    vm_fault_handler_us = 561.0;
    vm_protect_us = 80.0;
    vm_unprotect_us = 299.0;
    tp_fault_handler_us = 102.0;
    context_switch_us = 200.0;
    vb_exit_us = 46.0;
    vb_view_switch_us = 12.0;
    vb_view_update_us = 35.0;
  }

let zero =
  {
    software_update_us = 0.0;
    software_lookup_us = 0.0;
    nh_fault_handler_us = 0.0;
    vm_fault_handler_us = 0.0;
    vm_protect_us = 0.0;
    vm_unprotect_us = 0.0;
    tp_fault_handler_us = 0.0;
    context_switch_us = 0.0;
    vb_exit_us = 0.0;
    vb_view_switch_us = 0.0;
    vb_view_update_us = 0.0;
  }

let cycles = Ebp_machine.Cost_model.cycles_of_us

let pp ppf t =
  Format.fprintf ppf
    "update=%.2fus lookup=%.2fus nh=%.0fus vm=%.0fus protect=%.0fus unprotect=%.0fus tp=%.0fus vb=%.0fus"
    t.software_update_us t.software_lookup_us t.nh_fault_handler_us
    t.vm_fault_handler_us t.vm_protect_us t.vm_unprotect_us t.tp_fault_handler_us
    t.vb_exit_us
