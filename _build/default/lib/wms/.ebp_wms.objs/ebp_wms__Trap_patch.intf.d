lib/wms/trap_patch.mli: Ebp_isa Ebp_machine Timing Wms
