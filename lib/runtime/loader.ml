module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory
module Reg = Ebp_isa.Reg
module Abi = Ebp_lang.Abi
module Prng = Ebp_util.Prng
module Metrics = Ebp_obs.Metrics

(* One span and two counter bumps per machine run — phase-1 execution is
   seconds long, so the instrumentation cost is unmeasurable. *)
let m_runs = Metrics.counter "loader.runs"
let m_instructions = Metrics.counter "loader.instructions"
let m_cycles = Metrics.counter "loader.cycles"

type t = {
  machine : Machine.t;
  allocator : Allocator.t;
  debug : Ebp_lang.Debug_info.t;
  out : Buffer.t;
  mutable prng : Prng.t;
  mutable runtime_error : string option;
}

type run_result = {
  status : Machine.stop_reason;
  cycles : int;
  instructions : int;
  output : string;
  runtime_error : string option;
}

let machine t = t.machine
let allocator t = t.allocator
let debug t = t.debug
let output t = Buffer.contents t.out

let fail (t : t) machine msg =
  t.runtime_error <- Some msg;
  Machine.halt machine (-1)

let copy_words mem ~src ~dst ~len =
  let words = len / 4 in
  for i = 0 to words - 1 do
    Memory.privileged_store_word mem (dst + (4 * i)) (Memory.load_word mem (src + (4 * i)))
  done

let dispatch_syscall t machine n =
  let a0 = Machine.get_reg machine Reg.a0 in
  let a1 = Machine.get_reg machine Reg.a1 in
  if n = Abi.sys_exit then Machine.halt machine a0
  else if n = Abi.sys_print_int then
    Buffer.add_string t.out (string_of_int a0 ^ "\n")
  else if n = Abi.sys_print_char then
    Buffer.add_char t.out (Char.chr (a0 land 0xff))
  else if n = Abi.sys_malloc then
    let addr = match Allocator.malloc t.allocator a0 with Some a -> a | None -> 0 in
    Machine.set_reg machine Reg.v0 addr
  else if n = Abi.sys_free then begin
    match Allocator.free t.allocator a0 with
    | Ok () -> ()
    | Error msg -> fail t machine msg
  end
  else if n = Abi.sys_realloc then begin
    let copy = copy_words (Machine.memory machine) in
    match Allocator.realloc t.allocator a0 a1 ~copy with
    | Ok (Some addr) -> Machine.set_reg machine Reg.v0 addr
    | Ok None -> Machine.set_reg machine Reg.v0 0
    | Error msg -> fail t machine msg
  end
  else if n = Abi.sys_rand then
    Machine.set_reg machine Reg.v0 (if a0 <= 0 then 0 else Prng.int t.prng a0)
  else if n = Abi.sys_srand then t.prng <- Prng.create a0
  else fail t machine (Printf.sprintf "unknown system call %d" n)

let load ?(seed = 42) ?costs ?monitor_reg_count ?mem (compiled : Ebp_lang.Compiler.output) =
  let machine = Machine.create ?mem ?costs ?monitor_reg_count compiled.Ebp_lang.Compiler.program in
  let mem = Machine.memory machine in
  List.iter
    (fun (addr, value) -> Memory.privileged_store_word mem addr value)
    compiled.Ebp_lang.Compiler.debug.Ebp_lang.Debug_info.init_words;
  let t =
    {
      machine;
      allocator = Allocator.create ();
      debug = compiled.Ebp_lang.Compiler.debug;
      out = Buffer.create 256;
      prng = Prng.create seed;
      runtime_error = None;
    }
  in
  Machine.set_syscall_handler machine (Some (dispatch_syscall t));
  t

(* --- snapshots (checkpoint support) ---

   Everything above the machine that a resumed run depends on: the
   machine's execution state, the allocator, the PRNG, the output
   buffer, and the error flag. Memory is deliberately absent — the
   checkpointing layer captures it as dirty-page deltas against the
   freshly loaded image. *)

type snapshot = {
  s_machine : Machine.snapshot;
  s_alloc : Allocator.snapshot;
  s_prng : Prng.t;
  s_out : string;
  s_error : string option;
}

let snapshot t =
  {
    s_machine = Machine.snapshot t.machine;
    s_alloc = Allocator.snapshot t.allocator;
    s_prng = Prng.copy t.prng;
    s_out = Buffer.contents t.out;
    s_error = t.runtime_error;
  }

let restore t s =
  Machine.restore t.machine s.s_machine;
  Allocator.restore t.allocator s.s_alloc;
  t.prng <- Prng.copy s.s_prng;
  Buffer.clear t.out;
  Buffer.add_string t.out s.s_out;
  t.runtime_error <- s.s_error

let p_run = Ebp_util.Fault.point "loader.run"

let run ?fuel t =
  Ebp_obs.Span.with_span "loader.run" @@ fun () ->
  (* Evaluated before the machine touches any state, so a retry (the
     domain pool contains injected task faults) re-runs from scratch. *)
  Ebp_util.Fault.check p_run;
  let status = Machine.run ?fuel t.machine in
  Metrics.incr m_runs;
  Metrics.add m_cycles (Machine.cycles t.machine);
  Metrics.add m_instructions (Machine.instructions_executed t.machine);
  {
    status;
    cycles = Machine.cycles t.machine;
    instructions = Machine.instructions_executed t.machine;
    output = Buffer.contents t.out;
    runtime_error = t.runtime_error;
  }

let run_source ?seed ?fuel source =
  Result.map
    (fun compiled -> run ?fuel (load ?seed compiled))
    (Ebp_lang.Compiler.compile source)
