(* The ABI shared between the code generator and the runtime: system-call
   numbers and the register calling convention (args in a0..a5, result in
   v0). The runtime's loader and syscall dispatcher must agree with the
   code the compiler emits. *)

let sys_exit = 0
let sys_print_int = 1
let sys_print_char = 2
let sys_malloc = 3
let sys_free = 4
let sys_realloc = 5
let sys_rand = 6
let sys_srand = 7

let syscall_of_builtin = function
  | Typed.B_malloc -> sys_malloc
  | Typed.B_free -> sys_free
  | Typed.B_realloc -> sys_realloc
  | Typed.B_print_int -> sys_print_int
  | Typed.B_print_char -> sys_print_char
  | Typed.B_rand -> sys_rand
  | Typed.B_srand -> sys_srand
  | Typed.B_exit -> sys_exit

let max_args = 6
