examples/read_watch.mli:
