lib/isa/program.ml: Array Format Hashtbl Instr List Printf
