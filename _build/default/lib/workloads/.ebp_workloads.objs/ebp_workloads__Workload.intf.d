lib/workloads/workload.mli: Ebp_lang Ebp_runtime Ebp_trace
