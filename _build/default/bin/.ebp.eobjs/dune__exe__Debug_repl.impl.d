bin/debug_repl.ml: Ebp_core Ebp_isa Ebp_lang Ebp_machine Ebp_runtime Ebp_util In_channel List Option Printf String Unix
