(* CommonTeX analogue: dynamic-programming paragraph line-breaking.

   Matches CTeX's trace signature from the paper: all state in global
   static arrays and locals, zero heap allocation (Table 1 shows CTeX with
   no OneHeap/AllHeapInFunc sessions), and a compute kernel dominated by
   scans over static data. *)

let source =
  {|
// typeset: greedy-window DP line breaker over static arrays (CTeX analogue)

int widths[448];        // word widths of the current paragraph
int best[449];          // DP: minimal cost breaking words [0, i)
int brk[449];           // DP: chosen break point before word i
int line_len_hist[64];  // histogram of produced line lengths
int total_cost;
int total_lines;
int paragraphs_done;
int overfull_boxes;

int make_paragraph(int n, int seed) {
  int i;
  srand(seed);
  for (i = 0; i < n; i = i + 1) {
    widths[i] = 2 + rand(9);
  }
  return n;
}

// Badness of setting words [i, j) on one line of the given width.
int line_cost(int i, int j, int width) {
  int w;
  int k;
  int slack;
  w = 0;
  for (k = i; k < j; k = k + 1) {
    w = w + widths[k];
  }
  w = w + (j - i - 1);
  if (w > width) {
    return 10000000;
  }
  slack = width - w;
  return slack * slack * slack;
}

int break_lines(int n, int width) {
  int i;
  int j;
  int c;
  int bc;
  int bj;
  int span;
  best[0] = 0;
  for (i = 1; i <= n; i = i + 1) {
    bc = 100000000;
    bj = i - 1;
    j = i - 1;
    span = 0;
    while (j >= 0 && span < 14) {
      c = best[j] + line_cost(j, i, width);
      if (c < bc) {
        bc = c;
        bj = j;
      }
      j = j - 1;
      span = span + 1;
    }
    best[i] = bc;
    brk[i] = bj;
  }
  i = n;
  c = 0;
  while (i > 0) {
    span = i - brk[i];
    line_len_hist[span % 64] = line_len_hist[span % 64] + 1;
    c = c + 1;
    i = brk[i];
  }
  total_lines = total_lines + c;
  if (best[n] >= 10000000) {
    overfull_boxes = overfull_boxes + 1;
  }
  return best[n];
}

int main() {
  int p;
  int n;
  int cost;
  int checksum;
  total_cost = 0;
  total_lines = 0;
  for (p = 0; p < 14; p = p + 1) {
    n = 64 + rand(160);
    make_paragraph(n, 1000 + p);
    cost = break_lines(n, 24 + rand(16));
    total_cost = (total_cost + cost) % 1000000007;
    paragraphs_done = paragraphs_done + 1;
  }
  print_int(paragraphs_done);
  print_int(total_lines);
  print_int(total_cost);
  checksum = 0;
  for (p = 0; p < 64; p = p + 1) {
    checksum = checksum + line_len_hist[p] * (p + 1);
  }
  print_int(checksum);
  return 0;
}
|}
