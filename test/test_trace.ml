(* Tests for Ebp_trace: object descriptors, trace storage, codecs, and the
   recorder's install/remove/write semantics. *)

module Interval = Ebp_util.Interval
module Object_desc = Ebp_trace.Object_desc
module Trace = Ebp_trace.Trace
module Recorder = Ebp_trace.Recorder

let iv lo hi = Interval.make ~lo ~hi

(* --- Object_desc --- *)

let all_desc_examples =
  [
    Object_desc.Local { func = "f"; var = "x"; inst = 3 };
    Object_desc.Local { func = "f"; var = "x.1"; inst = 1 };
    Object_desc.Local_static { func = "g"; var = "counter" };
    Object_desc.Global { var = "table" };
    Object_desc.Heap { context = [ "alloc_vec"; "build"; "main" ]; seq = 17 };
    Object_desc.Heap { context = [ "main" ]; seq = 1 };
  ]

let test_desc_string_roundtrip () =
  List.iter
    (fun d ->
      match Object_desc.of_string (Object_desc.to_string d) with
      | Some d' ->
          if not (Object_desc.equal d d') then
            Alcotest.failf "roundtrip failed for %s" (Object_desc.to_string d)
      | None -> Alcotest.failf "parse failed for %s" (Object_desc.to_string d))
    all_desc_examples

let test_desc_site () =
  Alcotest.(check (option string)) "innermost is the site" (Some "alloc_vec")
    (Object_desc.site
       (Object_desc.Heap { context = [ "alloc_vec"; "main" ]; seq = 1 }));
  Alcotest.(check (option string)) "non-heap has no site" None
    (Object_desc.site (Object_desc.Global { var = "g" }))

let test_desc_bad_strings () =
  List.iter
    (fun s ->
      if Object_desc.of_string s <> None then Alcotest.failf "parsed garbage %S" s)
    [ ""; "nope"; "local:xy"; "heap:zz"; "local:f.x#zz" ]

(* --- Trace storage --- *)

let build_sample () =
  let b = Trace.Builder.create () in
  let obj1 = Object_desc.Global { var = "g" } in
  let obj2 = Object_desc.Heap { context = [ "main" ]; seq = 1 } in
  Trace.Builder.add_install b obj1 (iv 100 103);
  Trace.Builder.add_write b (iv 100 103) ~pc:7;
  Trace.Builder.add_install b obj2 (iv 200 239);
  Trace.Builder.add_write b (iv 300 300) ~pc:9;
  Trace.Builder.add_remove b obj2 (iv 200 239);
  Trace.Builder.add_remove b obj1 (iv 100 103);
  Trace.Builder.finish b

let test_trace_build_and_get () =
  let t = build_sample () in
  Alcotest.(check int) "length" 6 (Trace.length t);
  (match Trace.get t 0 with
  | Trace.Install { obj = Object_desc.Global { var = "g" }; range } ->
      Alcotest.(check int) "range lo" 100 (Interval.lo range)
  | _ -> Alcotest.fail "event 0");
  (match Trace.get t 1 with
  | Trace.Write { range; pc = 7 } -> Alcotest.(check int) "write hi" 103 (Interval.hi range)
  | _ -> Alcotest.fail "event 1");
  match Trace.get t 4 with
  | Trace.Remove { obj = Object_desc.Heap { seq = 1; _ }; _ } -> ()
  | _ -> Alcotest.fail "event 4"

let test_trace_interning () =
  let t = build_sample () in
  Alcotest.(check int) "two distinct objects" 2 (Trace.object_count t);
  match Trace.object_of_id t 0 with
  | Object_desc.Global { var = "g" } -> ()
  | _ -> Alcotest.fail "object 0"

let test_trace_stats () =
  let t = build_sample () in
  let s = Trace.stats t in
  Alcotest.(check int) "installs" 2 s.Trace.installs;
  Alcotest.(check int) "removes" 2 s.Trace.removes;
  Alcotest.(check int) "writes" 2 s.Trace.writes;
  Alcotest.(check int) "write bytes" 5 s.Trace.write_bytes;
  Alcotest.(check int) "objects" 2 s.Trace.distinct_objects

let test_trace_iter_raw () =
  let t = build_sample () in
  let tags = ref [] in
  Trace.iter_raw t (fun ~tag ~obj ~lo:_ ~hi:_ ~pc -> tags := (tag, obj, pc) :: !tags);
  match List.rev !tags with
  | [ (0, 0, -1); (2, -1, 7); (0, 1, -1); (2, -1, 9); (1, 1, -1); (1, 0, -1) ] -> ()
  | _ -> Alcotest.fail "raw iteration mismatch"

let test_trace_text_roundtrip () =
  let t = build_sample () in
  match Trace.of_text (Trace.to_text t) with
  | Error e -> Alcotest.fail e
  | Ok t2 ->
      Alcotest.(check int) "length" (Trace.length t) (Trace.length t2);
      for i = 0 to Trace.length t - 1 do
        if Trace.get t i <> Trace.get t2 i then Alcotest.failf "event %d differs" i
      done

let test_trace_text_errors () =
  (match Trace.of_text "X 1 2 3\n" with
  | Error msg -> Alcotest.(check bool) "line number" true (String.sub msg 0 4 = "line")
  | Ok _ -> Alcotest.fail "accepted junk");
  match Trace.of_text "W 5 2 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted inverted range"

let test_trace_binary_roundtrip () =
  let t = build_sample () in
  let path = Filename.temp_file "ebp_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      Trace.write_binary oc t;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match Trace.read_binary ic with
          | Error e -> Alcotest.fail e
          | Ok t2 ->
              Alcotest.(check int) "length" (Trace.length t) (Trace.length t2);
              for i = 0 to Trace.length t - 1 do
                if Trace.get t i <> Trace.get t2 i then
                  Alcotest.failf "event %d differs" i
              done))

let test_trace_binary_rejects_garbage () =
  let path = Filename.temp_file "ebp_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOTATRACE";
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match Trace.read_binary ic with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "accepted garbage"))

(* Builder growth across the initial capacity. *)
let test_trace_many_events () =
  let b = Trace.Builder.create () in
  for i = 0 to 9_999 do
    Trace.Builder.add_write b (iv (4 * i) ((4 * i) + 3)) ~pc:i
  done;
  let t = Trace.Builder.finish b in
  Alcotest.(check int) "length" 10_000 (Trace.length t);
  match Trace.get t 9_999 with
  | Trace.Write { pc = 9_999; _ } -> ()
  | _ -> Alcotest.fail "last event"

(* --- binary codec (EBPT2) --- *)

let rows t =
  let acc = ref [] in
  Trace.iter_raw t (fun ~tag ~obj ~lo ~hi ~pc -> acc := (tag, obj, lo, hi, pc) :: !acc);
  List.rev !acc

let traces_equal t1 t2 =
  Trace.length t1 = Trace.length t2
  && Trace.objects t1 = Trace.objects t2
  && rows t1 = rows t2

let check_roundtrip t =
  match Trace.decode (Trace.encode t) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok t2 -> traces_equal t t2

let prop_codec_roundtrip =
  (* Random event soup: decode (encode t) must reproduce every row and
     the whole object table. *)
  let open QCheck2.Gen in
  let obj_pool =
    [|
      Object_desc.Global { var = "g0" };
      Object_desc.Global { var = "g1" };
      Object_desc.Local { func = "f"; var = "x"; inst = 1 };
      Object_desc.Local { func = "f"; var = "x"; inst = 2 };
      Object_desc.Local_static { func = "g"; var = "counter" };
      Object_desc.Heap { context = [ "alloc"; "main" ]; seq = 1 };
      Object_desc.Heap { context = [ "main" ]; seq = 2 };
    |]
  in
  let event =
    oneof
      [
        (let* lo = int_range (-1_000_000) 1_000_000 in
         let* width = int_range 0 64 in
         let* pc = int_range 0 100_000 in
         return (`Write (lo, lo + width, pc)));
        (let* idx = int_range 0 (Array.length obj_pool - 1) in
         let* lo = int_range 0 1_000_000 in
         let* width = int_range 0 64 in
         return (`Install (idx, lo, lo + width)));
        (let* idx = int_range 0 (Array.length obj_pool - 1) in
         let* lo = int_range 0 1_000_000 in
         let* width = int_range 0 64 in
         return (`Remove (idx, lo, lo + width)));
      ]
  in
  QCheck2.Test.make ~name:"binary codec roundtrip" ~count:300
    (list_size (int_range 0 200) event)
    (fun events ->
      let b = Trace.Builder.create () in
      List.iter
        (function
          | `Write (lo, hi, pc) -> Trace.Builder.add_write_raw b ~lo ~hi ~pc
          | `Install (idx, lo, hi) ->
              Trace.Builder.add_install b obj_pool.(idx) (iv lo hi)
          | `Remove (idx, lo, hi) ->
              Trace.Builder.add_remove b obj_pool.(idx) (iv lo hi))
        events;
      check_roundtrip (Trace.Builder.finish b))

let test_codec_extreme_values () =
  (* Deltas wrap at the 63-bit boundary; the zigzag varint chain must
     round-trip every representable bound anyway. *)
  let b = Trace.Builder.create () in
  List.iter
    (fun lo -> Trace.Builder.add_write_raw b ~lo ~hi:lo ~pc:max_int)
    [ 0; -1; 1; max_int; min_int; min_int + 1; 0x3FFFFFFFFFF; -0x3FFFFFFFFFF ];
  let t = Trace.Builder.finish b in
  Alcotest.(check bool) "roundtrip at extremes" true (check_roundtrip t)

let test_codec_malformed () =
  let valid = Trace.encode (build_sample ()) in
  let expect_error what s =
    match Trace.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" what
  in
  expect_error "empty input" "";
  expect_error "bad magic" ("XXXXX" ^ String.sub valid 5 (String.length valid - 5));
  expect_error "old codec version" "EBPT1";
  for cut = String.length Trace.codec_version to String.length valid - 1 do
    expect_error "truncation" (String.sub valid 0 cut)
  done;
  expect_error "trailing bytes" (valid ^ "\x00");
  expect_error "oversized varint"
    (Trace.codec_version ^ String.make 10 '\xff')

let test_codec_mutation_fuzz () =
  (* Exhaustive single-bit mutations of a valid blob: the decoder must
     always return ([Ok] or [Error] — no exception, no hang), whatever
     the flip hits. Detection of silent misdecodes is the cache layer's
     job (its CRC trailer; see test_fault.ml) — this guards the decoder
     itself against crashes on adversarial input. *)
  let valid = Trace.encode (build_sample ()) in
  for i = 0 to String.length valid - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string valid in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      match Trace.decode (Bytes.unsafe_to_string b) with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.failf "decode raised %s on bit %d of byte %d"
            (Printexc.to_string e) bit i
    done
  done;
  (* Flip-then-truncate: a mutated length field must never drive an
     unbounded read past the end of the buffer. *)
  for cut = 0 to String.length valid - 1 do
    let b = Bytes.of_string (String.sub valid 0 cut) in
    if cut > 0 then Bytes.set b (cut / 2) '\xff';
    match Trace.decode (Bytes.unsafe_to_string b) with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "decode raised %s on mutated prefix %d"
          (Printexc.to_string e) cut
  done

let test_codec_raw_adders_equivalent () =
  (* add_write_raw / register + add_install_id are byte-for-byte
     equivalent to their boxed counterparts. *)
  let obj = Object_desc.Global { var = "g" } in
  let boxed = Trace.Builder.create () in
  Trace.Builder.add_install boxed obj (iv 100 103);
  Trace.Builder.add_write boxed (iv 100 103) ~pc:7;
  Trace.Builder.add_remove boxed obj (iv 100 103);
  let raw = Trace.Builder.create () in
  let id = Trace.Builder.register raw obj in
  Trace.Builder.add_install_id raw id ~lo:100 ~hi:103;
  Trace.Builder.add_write_raw raw ~lo:100 ~hi:103 ~pc:7;
  Trace.Builder.add_remove_id raw id ~lo:100 ~hi:103;
  Alcotest.(check string) "identical bytes"
    (Trace.encode (Trace.Builder.finish boxed))
    (Trace.encode (Trace.Builder.finish raw))

let test_builder_hint () =
  (* An exact hint means finish can hand the buffer over; a wrong hint
     still yields a correct trace. *)
  List.iter
    (fun hint ->
      let b = Trace.Builder.create ~hint () in
      for i = 0 to 99 do
        Trace.Builder.add_write_raw b ~lo:(4 * i) ~hi:((4 * i) + 3) ~pc:i
      done;
      let t = Trace.Builder.finish b in
      Alcotest.(check int) "length" 100 (Trace.length t);
      match Trace.get t 99 with
      | Trace.Write { pc = 99; _ } -> ()
      | _ -> Alcotest.fail "last event wrong")
    [ 100; 1; 1000 ]

let test_codec_compact () =
  (* A workload-shaped write run (sequential word stores from a handful
     of pcs) must land well under 8 bytes/event. *)
  let b = Trace.Builder.create ~hint:10_000 () in
  for i = 0 to 9_999 do
    let lo = 4096 + (4 * i) in
    Trace.Builder.add_write_raw b ~lo ~hi:(lo + 3) ~pc:(100 + (i mod 7))
  done;
  let t = Trace.Builder.finish b in
  let bytes = String.length (Trace.encode t) in
  Alcotest.(check bool)
    (Printf.sprintf "%d bytes for 10k events" bytes)
    true
    (bytes < 8 * 10_000)

let test_codec_byte_counters () =
  let module Metrics = Ebp_obs.Metrics in
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    (fun () ->
      let t = build_sample () in
      let s = Trace.encode t in
      (match Trace.decode s with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      let counter name =
        let snap = Metrics.snapshot () in
        match
          List.find_opt (fun (n, _, _) -> String.equal n name) snap.Metrics.counters
        with
        | Some (_, total, _) -> total
        | None -> Alcotest.failf "counter %s not registered" name
      in
      Alcotest.(check int) "bytes_out" (String.length s)
        (counter "trace.codec.bytes_out");
      Alcotest.(check int) "bytes_in" (String.length s)
        (counter "trace.codec.bytes_in"))

(* --- columnar codec (EBPT3) and the mmap load path --- *)

let big_sample ?(events = 10_000) () =
  (* Enough events to span multiple 4096-event summary blocks, with
     installs so a mapped trace has usable install bounds. *)
  let b = Trace.Builder.create ~hint:(events + 2) () in
  let obj = Object_desc.Global { var = "g" } in
  Trace.Builder.add_install b obj (iv 4096 8191);
  for i = 0 to events - 1 do
    let lo = 4096 + (4 * (i mod 1024)) in
    Trace.Builder.add_write b (iv lo (lo + 3)) ~pc:(100 + (i mod 7))
  done;
  Trace.Builder.add_remove b obj (iv 4096 8191);
  Trace.Builder.finish b

let test_columnar_roundtrip () =
  List.iter
    (fun t ->
      let bytes = Trace.encode_columnar ~meta:"m1" t in
      match Trace.decode_columnar bytes with
      | Error e -> Alcotest.failf "decode failed: %s" e
      | Ok (t2, meta) ->
          Alcotest.(check string) "meta" "m1" meta;
          Alcotest.(check bool) "rows and objects" true (traces_equal t t2);
          Alcotest.(check string) "canonical bytes" (Trace.encode t)
            (Trace.encode t2))
    [ build_sample (); big_sample (); Trace.Builder.finish (Trace.Builder.create ()) ]

let test_columnar_malformed () =
  let valid = Trace.encode_columnar ~meta:"m" (build_sample ()) in
  let expect_error what s =
    match Trace.decode_columnar s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" what
  in
  expect_error "empty input" "";
  expect_error "bad magic" ("XXXXXXXX" ^ String.sub valid 8 (String.length valid - 8));
  for cut = 0 to String.length valid - 1 do
    expect_error "truncation" (String.sub valid 0 cut)
  done;
  expect_error "trailing bytes" (valid ^ "\x00")

let test_columnar_bitflips_detected () =
  (* Every single-bit flip anywhere in the image must be rejected by the
     fully-checked decoder (CRC over the body, magic over the rest). *)
  let valid = Trace.encode_columnar ~meta:"m" (build_sample ()) in
  for i = 0 to String.length valid - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string valid in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      match Trace.decode_columnar (Bytes.unsafe_to_string b) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bit %d of byte %d flipped" bit i
    done
  done

let with_columnar_file t f =
  let path = Filename.temp_file "ebp_columnar" ".ebpt3" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Trace.encode_columnar ~meta:"mm" t));
      f path)

let test_columnar_map () =
  let t = big_sample () in
  with_columnar_file t (fun path ->
      match Trace.map_columnar path with
      | Error e -> Alcotest.failf "map failed: %s" e
      | Ok (m, meta) ->
          Alcotest.(check string) "meta" "mm" meta;
          Alcotest.(check bool) "mapped storage" true (Trace.is_mapped m);
          Alcotest.(check bool) "heap original" false (Trace.is_mapped t);
          (match Trace.install_bounds m with
          | Some (lo, hi) ->
              Alcotest.(check int) "install lo" 4096 lo;
              Alcotest.(check int) "install hi" 8191 hi
          | None -> Alcotest.fail "mapped trace should expose install bounds");
          Alcotest.(check bool) "rows and objects" true (traces_equal t m);
          Alcotest.(check string) "canonical bytes" (Trace.encode t)
            (Trace.encode m))

let test_columnar_map_verify () =
  let t = build_sample () in
  with_columnar_file t (fun path ->
      match Trace.map_columnar ~verify:true path with
      | Error e -> Alcotest.failf "verified load failed: %s" e
      | Ok (m, _) -> Alcotest.(check bool) "rows" true (traces_equal t m))

let test_columnar_map_rejects_damage () =
  (* Structural damage — truncation, header corruption, bad column tags —
     must be caught even by the unverified (header-checked) mapping. *)
  let t = build_sample () in
  with_columnar_file t (fun path ->
      let valid = In_channel.with_open_bin path In_channel.input_all in
      let write s = Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc s)
      in
      let expect_error what =
        match Trace.map_columnar path with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "mapped %s" what
      in
      write (String.sub valid 0 (String.length valid / 2));
      expect_error "a truncated file";
      write ("ZZZZZZZZ" ^ String.sub valid 8 (String.length valid - 8));
      expect_error "a bad magic";
      (* Flip a bit in the w0 column's first word: the tag/object check
         walks the whole column even without the payload CRC. *)
      let b = Bytes.of_string valid in
      let w0_off = String.length valid - 12 - (8 * 4 * Trace.length t) in
      Bytes.set b (w0_off + 7) '\x40';
      write (Bytes.unsafe_to_string b);
      expect_error "a corrupt w0 column";
      write valid;
      match Trace.map_columnar path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "restored file rejected: %s" e)

let test_columnar_mapped_skipping () =
  (* iter_raw_skipping over a mapped trace must visit exactly the events
     iter_raw visits, minus whole skipped blocks whose write counts are
     reported through on_skip — so visited + skipped = total writes. *)
  let t = big_sample ~events:20_000 () in
  with_columnar_file t (fun path ->
      match Trace.map_columnar path with
      | Error e -> Alcotest.failf "map failed: %s" e
      | Ok (m, _) ->
          (* A window disjoint from every write: everything skippable. *)
          let visited = ref 0 and skipped = ref 0 in
          Trace.iter_raw_skipping m
            ~skip:(fun ~min_lo ~max_hi:_ -> min_lo > 0)
            ~on_skip:(fun ~writes -> skipped := !skipped + writes)
            (fun ~tag ~obj:_ ~lo:_ ~hi:_ ~pc:_ ->
              if tag = 2 then incr visited);
          Alcotest.(check int) "write accounting" 20_000 (!visited + !skipped);
          Alcotest.(check bool) "some blocks skipped" true (!skipped > 0);
          (* A never-skip predicate degenerates to iter_raw. *)
          let n = ref 0 in
          Trace.iter_raw_skipping m
            ~skip:(fun ~min_lo:_ ~max_hi:_ -> false)
            ~on_skip:(fun ~writes:_ -> Alcotest.fail "skipped despite false")
            (fun ~tag:_ ~obj:_ ~lo:_ ~hi:_ ~pc:_ -> incr n);
          Alcotest.(check int) "all events" (Trace.length m) !n)

let test_columnar_byte_counters () =
  let module Metrics = Ebp_obs.Metrics in
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    (fun () ->
      let t = build_sample () in
      let s = Trace.encode_columnar ~meta:"mm" t in
      with_columnar_file t (fun path ->
          match Trace.map_columnar path with
          | Error e -> Alcotest.fail e
          | Ok _ ->
              let counter name =
                let snap = Metrics.snapshot () in
                match
                  List.find_opt
                    (fun (n, _, _) -> String.equal n name)
                    snap.Metrics.counters
                with
                | Some (_, total, _) -> total
                | None -> Alcotest.failf "counter %s not registered" name
              in
              Alcotest.(check int) "columnar_bytes_out"
                (2 * String.length s)
                (counter "trace.codec.columnar_bytes_out");
              Alcotest.(check bool) "mapped_bytes counted" true
                (counter "trace.codec.mapped_bytes" > 0)))

(* --- Recorder semantics --- *)

let record src =
  match Recorder.record_source src with
  | Error e -> Alcotest.failf "compile error: %s" e
  | Ok (result, trace, debug) -> (result, trace, debug)

let count_events trace pred =
  let n = ref 0 in
  Trace.iter trace (fun e -> if pred e then incr n);
  !n

let test_recorder_balanced_installs () =
  let _, trace, _ =
    record
      {|int g;
        int f(int n) { int x; x = n; if (n > 0) { return f(n - 1); } return x; }
        int main() { int* p; p = malloc(8); f(3); free(p); return g; }|}
  in
  let s = Trace.stats trace in
  Alcotest.(check int) "installs = removes" s.Trace.installs s.Trace.removes

let test_recorder_local_instantiations () =
  (* f recurses 4 activations deep: its local x gets 4 distinct Local
     descriptors, all sharing func and var. *)
  let _, trace, _ =
    record
      {|int f(int n) { int x; x = n; if (n > 0) { return f(n - 1); } return x; }
        int main() { return f(3); }|}
  in
  let insts =
    Array.to_list (Trace.objects trace)
    |> List.filter_map (function
         | Object_desc.Local { func = "f"; var = "x"; inst } -> Some inst
         | _ -> None)
    |> List.sort Int.compare
  in
  Alcotest.(check (list int)) "four instantiations" [ 1; 2; 3; 4 ] insts

let test_recorder_heap_context () =
  let _, trace, _ =
    record
      {|int* wrap(int n) { return malloc(n); }
        int main() { int* p; p = wrap(8); free(p); return 0; }|}
  in
  let heaps =
    Array.to_list (Trace.objects trace)
    |> List.filter_map (function
         | Object_desc.Heap { context; seq } -> Some (context, seq)
         | _ -> None)
  in
  match heaps with
  | [ ([ "wrap"; "main" ], 1) ] -> ()
  | _ -> Alcotest.fail "heap context should list wrap then main"

let test_recorder_realloc_same_object () =
  let _, trace, _ =
    record
      {|int main() {
          int* p;
          p = malloc(8);
          p = realloc(p, 64);
          free(p);
          return 0; }|}
  in
  let heap_objs =
    Array.to_list (Trace.objects trace)
    |> List.filter (function Object_desc.Heap _ -> true | _ -> false)
  in
  Alcotest.(check int) "one heap object across realloc" 1 (List.length heap_objs);
  (* Its install count is 2 (original + post-realloc), remove count 2. *)
  let installs =
    count_events trace (function
      | Trace.Install { obj = Object_desc.Heap _; _ } -> true
      | _ -> false)
  in
  Alcotest.(check int) "two installs" 2 installs

let test_recorder_implicit_writes_excluded () =
  (* A function call writes ra/fp/params to the stack; none of those may
     appear as Write events. The only explicit stores here are g = ... *)
  let _, trace, _ =
    record
      {|int g;
        int f(int a, int b) { return a + b; }
        int main() { g = f(1, 2); return 0; }|}
  in
  let s = Trace.stats trace in
  Alcotest.(check int) "only the global store traced" 1 s.Trace.writes

let test_recorder_statics_installed_once () =
  let _, trace, _ =
    record
      {|int f() { static int n; n = n + 1; return n; }
        int main() { f(); f(); f(); return 0; }|}
  in
  let static_installs =
    count_events trace (function
      | Trace.Install { obj = Object_desc.Local_static { func = "f"; var = "n" }; _ } ->
          true
      | _ -> false)
  in
  Alcotest.(check int) "static installed once, not per call" 1 static_installs

let test_recorder_writes_have_pcs () =
  let _, trace, _ = record "int g; int main() { g = 1; g = 2; return 0; }" in
  Trace.iter trace (function
    | Trace.Write { pc; _ } ->
        if pc < 0 then Alcotest.fail "write without a pc"
    | Trace.Install _ | Trace.Remove _ -> ())

let test_recorder_globals_installed () =
  let _, trace, _ = record "int a; int b[5]; int main() { a = 1; return 0; }" in
  let globals =
    Array.to_list (Trace.objects trace)
    |> List.filter_map (function
         | Object_desc.Global { var } -> Some var
         | _ -> None)
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "both globals" [ "a"; "b" ] globals


let test_recorder_exit_mid_chain () =
  (* exit() three frames deep leaves activations live; finish must emit
     their removes so installs and removes still balance. *)
  let _, trace, _ =
    record
      {|int f(int n) {
          int x;
          x = n;
          if (n == 0) { exit(5); }
          return f(n - 1);
        }
        int main() { f(3); print_int(999); return 0; }|}
  in
  let s = Trace.stats trace in
  Alcotest.(check int) "balanced despite exit" s.Trace.installs s.Trace.removes;
  Alcotest.(check bool) "several activations traced" true (s.Trace.installs >= 4)

let test_recorder_leaked_heap_removed_at_finish () =
  let _, trace, _ =
    record "int main() { int* p; p = malloc(16); p[0] = 1; return 0; }"
  in
  let s = Trace.stats trace in
  Alcotest.(check int) "leak still balanced" s.Trace.installs s.Trace.removes

let () =
  Alcotest.run "trace"
    [
      ( "object_desc",
        [
          Alcotest.test_case "string roundtrip" `Quick test_desc_string_roundtrip;
          Alcotest.test_case "site" `Quick test_desc_site;
          Alcotest.test_case "bad strings" `Quick test_desc_bad_strings;
        ] );
      ( "storage",
        [
          Alcotest.test_case "build/get" `Quick test_trace_build_and_get;
          Alcotest.test_case "interning" `Quick test_trace_interning;
          Alcotest.test_case "stats" `Quick test_trace_stats;
          Alcotest.test_case "iter_raw" `Quick test_trace_iter_raw;
          Alcotest.test_case "many events" `Quick test_trace_many_events;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "text roundtrip" `Quick test_trace_text_roundtrip;
          Alcotest.test_case "text errors" `Quick test_trace_text_errors;
          Alcotest.test_case "binary roundtrip" `Quick test_trace_binary_roundtrip;
          Alcotest.test_case "binary garbage" `Quick test_trace_binary_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          Alcotest.test_case "extreme values" `Quick test_codec_extreme_values;
          Alcotest.test_case "malformed inputs" `Quick test_codec_malformed;
          Alcotest.test_case "mutation fuzz" `Quick test_codec_mutation_fuzz;
          Alcotest.test_case "raw adders equivalent" `Quick
            test_codec_raw_adders_equivalent;
          Alcotest.test_case "builder hint" `Quick test_builder_hint;
          Alcotest.test_case "compactness" `Quick test_codec_compact;
          Alcotest.test_case "byte counters" `Quick test_codec_byte_counters;
        ] );
      ( "columnar",
        [
          Alcotest.test_case "roundtrip" `Quick test_columnar_roundtrip;
          Alcotest.test_case "malformed inputs" `Quick test_columnar_malformed;
          Alcotest.test_case "bit flips detected" `Quick
            test_columnar_bitflips_detected;
          Alcotest.test_case "mmap load" `Quick test_columnar_map;
          Alcotest.test_case "verified load" `Quick test_columnar_map_verify;
          Alcotest.test_case "map rejects damage" `Quick
            test_columnar_map_rejects_damage;
          Alcotest.test_case "mapped block skipping" `Quick
            test_columnar_mapped_skipping;
          Alcotest.test_case "byte counters" `Quick test_columnar_byte_counters;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "balanced installs" `Quick test_recorder_balanced_installs;
          Alcotest.test_case "local instantiations" `Quick
            test_recorder_local_instantiations;
          Alcotest.test_case "heap context" `Quick test_recorder_heap_context;
          Alcotest.test_case "realloc identity" `Quick test_recorder_realloc_same_object;
          Alcotest.test_case "implicit writes excluded" `Quick
            test_recorder_implicit_writes_excluded;
          Alcotest.test_case "statics once" `Quick test_recorder_statics_installed_once;
          Alcotest.test_case "write pcs" `Quick test_recorder_writes_have_pcs;
          Alcotest.test_case "globals installed" `Quick test_recorder_globals_installed;
          Alcotest.test_case "exit mid-chain" `Quick test_recorder_exit_mid_chain;
          Alcotest.test_case "leaked heap removed" `Quick
            test_recorder_leaked_heap_removed_at_finish;
        ] );
    ]
